/**
 * @file
 * Figure 10: the cloud service — leveldb-lite driven by YCSB
 * (200 records, 200 operations, Zipfian) on top of the file system
 * and network stack, compared across M3v with isolated tiles, M3v
 * with one shared tile, and Linux. Requests are read ahead from a
 * file and requests+results leave via UDP (the paper's workaround
 * for its flaky TCP). 8 runs after 2 warmup runs; total runtime
 * split into user and system time.
 *
 * Expected shape: M3v (shared) competitive with Linux for reads,
 * inserts and updates; Linux worst on the scan-heavy mix (its large
 * kernel footprint thrashes the 16 KiB L1I on every syscall, while
 * M3v handles most file-system work through extent capabilities
 * without kernel entries).
 */

#include <cstdio>
#include <iterator>
#include <string>

#include "bench_util.h"
#include "sim/lane.h"
#include "linuxref/kernel.h"
#include "services/m3fs.h"
#include "services/net.h"
#include "services/pager.h"
#include "workloads/kv.h"
#include "workloads/vfs_linux.h"
#include "workloads/vfs_m3v.h"
#include "workloads/ycsb.h"

namespace {

using namespace m3v;
using workloads::Bytes;
using workloads::KvStore;
using workloads::YcsbMix;
using workloads::YcsbOp;
using workloads::YcsbWorkload;

constexpr int kWarmup = 2;
constexpr int kRuns = 8;

struct Split
{
    double userSec = 0;
    double systemSec = 0;

    double total() const { return userSec + systemSec; }
};

/** The database application: load, read requests file, execute, send
 *  requests+results via UDP. */
sim::Task
dbRun(workloads::Vfs &vfs, services::UdpSocket *sock,
      const YcsbWorkload &w, const std::string &dir)
{
    workloads::KvParams kv_params;
    kv_params.dir = dir;
    kv_params.memtableLimit = 48 * 1024;
    KvStore db(vfs, kv_params);
    co_await db.open();
    for (const auto &op : w.load)
        co_await db.put(op.key, op.value);

    // Read the request stream ahead of time from a file (the paper's
    // UDP-fairness workaround), then execute.
    std::unique_ptr<workloads::VfsFile> reqf;
    bool ok = false;
    co_await vfs.open(dir + "/requests", workloads::kVfsR, &reqf,
                      &ok);
    if (ok) {
        for (;;) {
            Bytes chunk;
            co_await reqf->read(4096, &chunk, &ok);
            if (chunk.empty())
                break;
        }
        co_await reqf->close();
    }

    dtu::Error nerr = dtu::Error::None;
    for (const auto &op : w.run) {
        Bytes result;
        switch (op.kind) {
          case YcsbOp::Kind::Read: {
            std::string v;
            bool found = false;
            co_await db.get(op.key, &v, &found);
            result.assign(v.begin(), v.end());
            break;
          }
          case YcsbOp::Kind::Insert:
          case YcsbOp::Kind::Update:
            co_await db.put(op.key, op.value);
            break;
          case YcsbOp::Kind::Scan: {
            std::vector<std::pair<std::string, std::string>> out;
            co_await db.scan(op.key, op.scanLen, &out);
            for (auto &kvp : out)
                result.insert(result.end(), kvp.second.begin(),
                              kvp.second.end());
            break;
          }
        }
        // Send request + result to the peer (UDP, sink side).
        if (sock) {
            Bytes pkt(op.key.begin(), op.key.end());
            std::size_t n = std::min<std::size_t>(result.size(),
                                                  1200);
            pkt.insert(pkt.end(), result.begin(),
                       result.begin() + static_cast<long>(n));
            co_await sock->sendTo(0x0a000001, 9, std::move(pkt),
                                  &nerr);
        }
    }
    co_await db.close();
}

/** Linux equivalent using in-kernel sockets. */
sim::Task
dbRunLinux(workloads::Vfs &vfs, linuxref::LinuxKernel &kernel,
           linuxref::LinuxProcess &p, int sock_fd,
           const YcsbWorkload &w, const std::string &dir)
{
    workloads::KvParams kv_params;
    kv_params.dir = dir;
    kv_params.memtableLimit = 48 * 1024;
    KvStore db(vfs, kv_params);
    co_await db.open();
    for (const auto &op : w.load)
        co_await db.put(op.key, op.value);

    std::unique_ptr<workloads::VfsFile> reqf;
    bool ok = false;
    co_await vfs.open(dir + "/requests", workloads::kVfsR, &reqf,
                      &ok);
    if (ok) {
        for (;;) {
            Bytes chunk;
            co_await reqf->read(4096, &chunk, &ok);
            if (chunk.empty())
                break;
        }
        co_await reqf->close();
    }

    for (const auto &op : w.run) {
        Bytes result;
        switch (op.kind) {
          case YcsbOp::Kind::Read: {
            std::string v;
            bool found = false;
            co_await db.get(op.key, &v, &found);
            result.assign(v.begin(), v.end());
            break;
          }
          case YcsbOp::Kind::Insert:
          case YcsbOp::Kind::Update:
            co_await db.put(op.key, op.value);
            break;
          case YcsbOp::Kind::Scan: {
            std::vector<std::pair<std::string, std::string>> out;
            co_await db.scan(op.key, op.scanLen, &out);
            for (auto &kvp : out)
                result.insert(result.end(), kvp.second.begin(),
                              kvp.second.end());
            break;
          }
        }
        Bytes pkt(op.key.begin(), op.key.end());
        std::size_t n = std::min<std::size_t>(result.size(), 1200);
        pkt.insert(pkt.end(), result.begin(),
                   result.begin() + static_cast<long>(n));
        co_await kernel.sysSendTo(p, sock_fd, 0x0a000001, 9,
                                  std::move(pkt));
    }
    co_await db.close();
}

/** Prepare the requests file once per run directory. */
sim::Task
writeRequestsFile(workloads::Vfs &vfs, const std::string &dir,
                  std::size_t bytes)
{
    bool ok = false;
    co_await vfs.mkdir(dir, &ok);
    std::unique_ptr<workloads::VfsFile> f;
    co_await vfs.open(dir + "/requests",
                      workloads::kVfsW | workloads::kVfsCreate, &f,
                      &ok);
    for (std::size_t off = 0; off < bytes; off += 4096)
        co_await f->write(Bytes(std::min<std::size_t>(4096,
                                                      bytes - off),
                                0x33),
                          &ok);
    co_await f->close();
}

Split
m3vCloud(bool shared, const YcsbMix &mix,
         bench::MetricsDump *dump = nullptr,
         const std::string &trace_out = {},
         const std::string &section = {})
{
    sim::EventQueue eq;
    if (!trace_out.empty())
        eq.tracer().enableAll();
    os::SystemParams params;
    params.userTiles = 4;
    params.dram.capacityBytes = 256 << 20;
    os::System sys(eq, params);

    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Sink);
    nic.connect(&host);
    host.connect(&nic);

    unsigned net_tile = 0;
    unsigned db_tile = 0;
    unsigned fs_tile = shared ? 0 : 1;
    unsigned pager_tile = shared ? 0 : 2;
    if (!shared)
        db_tile = 3;

    services::M3fsParams fsp;
    fsp.storageBytes = 64 << 20;
    services::M3fs fs(sys, fs_tile, fsp);
    services::NetService net(sys, net_tile, nic);
    services::PagerService pager(sys, pager_tile);
    auto *db = sys.createApp(db_tile, "leveldb", 12 * 1024);
    auto fs_client = fs.addClient(db);
    auto net_client = net.addClient(db);
    auto pager_client = pager.addClient(db);
    fs.startService();
    net.startService();
    pager.startService();

    YcsbWorkload w =
        workloads::ycsbGenerate(workloads::YcsbConfig{}, mix);

    sim::Tick t_start = 0, t_end = 0;
    sim::Tick sys0 = 0, sys1 = 0;

    auto system_ticks = [&]() {
        // File system and network stack count as system time
        // (section 6.5.2); the remainder of the runtime is user.
        return fs.app()->act->thread().busyTicks() +
               net.app()->act->thread().busyTicks();
    };

    sys.start(db, [&, net_client, pager_client,
                   fs_client](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr va = 0;
        dtu::Error perr = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 8, &va,
                                         &perr);
        workloads::M3vVfs vfs(env, fs_client);
        services::UdpSocket sock(env, net_client);
        dtu::Error err = dtu::Error::None;
        co_await sock.create(7000, &err);

        for (int r = 0; r < kWarmup + kRuns; r++) {
            std::string dir = "/run" + std::to_string(r);
            co_await writeRequestsFile(vfs, dir, 32 * 1024);
            if (r == kWarmup) {
                t_start = eq.now();
                sys0 = system_ticks();
            }
            co_await dbRun(vfs, &sock, w, dir);
        }
        t_end = eq.now();
        sys1 = system_ticks();
    });
    eq.run();
    if (dump)
        dump->addSection(section, eq.metrics());
    if (!trace_out.empty())
        eq.tracer().writeJsonFile(trace_out);
    double total = sim::ticksToSec(t_end - t_start);
    double system = sim::ticksToSec(sys1 - sys0);
    return Split{total - system, system};
}

Split
linuxCloud(const YcsbMix &mix)
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Sink);
    nic.connect(&host);
    host.connect(&nic);
    linuxref::LinuxKernel kernel(eq, "k", core, linuxref::LinuxCosts{},
                                 &nic);
    auto *p = kernel.createProcess("leveldb", 11 * 1024);

    YcsbWorkload w =
        workloads::ycsbGenerate(workloads::YcsbConfig{}, mix);

    sim::Tick user0 = 0, sys0 = 0, user1 = 0, sys1 = 0;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        workloads::LinuxVfs vfs(kernel, *p);
        int s = -1;
        co_await kernel.sysSocket(*p, 7000, &s);
        for (int r = 0; r < kWarmup + kRuns; r++) {
            std::string dir = "/run" + std::to_string(r);
            co_await writeRequestsFile(vfs, dir, 32 * 1024);
            if (r == kWarmup) {
                user0 = p->userTicks();
                sys0 = p->systemTicks();
            }
            co_await dbRunLinux(vfs, kernel, *p, s, w, dir);
        }
        user1 = p->userTicks();
        sys1 = p->systemTicks();
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    return Split{sim::ticksToSec(user1 - user0),
                 sim::ticksToSec(sys1 - sys0)};
}

void
printRow(const char *label, const Split &s)
{
    std::printf("  %-16s user %7.2f s   system %7.2f s   total "
                "%7.2f s\n",
                label, s.userSec, s.systemSec, s.total());
}

} // namespace

int
main(int argc, char **argv)
{
    using m3v::bench::banner;

    m3v::bench::ObsOptions obs = m3v::bench::parseObsArgs(argc, argv);
    m3v::bench::MetricsDump dump;
    std::string trace_once = obs.traceOut;

    banner("Figure 10",
           "Cloud service (leveldb-lite + YCSB) vs Linux; 200 "
           "records, 200 ops, 8 runs");

    struct Mix
    {
        const char *name;
        YcsbMix mix;
    };
    const Mix mixes[] = {
        {"Read", YcsbMix::readHeavy()},
        {"Insert", YcsbMix::insertHeavy()},
        {"Update", YcsbMix::updateHeavy()},
        {"Mixed", YcsbMix::mixed()},
        {"Scan", YcsbMix::scanHeavy()},
    };

    // Every (mix, system) run is an independent cell; cells run on
    // --jobs threads and all output is printed in registration order
    // after the join, so the figure is byte-identical for any --jobs.
    constexpr std::size_t kMixes = std::size(mixes);
    struct CellOut
    {
        Split iso, sh, lin;
        m3v::bench::MetricsDump diso, dsh;
    };
    std::vector<CellOut> outs(kMixes);
    std::vector<sim::UniqueFunction<void()>> cells;
    for (std::size_t i = 0; i < kMixes; i++) {
        const Mix &m = mixes[i];
        CellOut *o = &outs[i];
        // Trace only the first isolated run (the file would be huge
        // otherwise).
        std::string trace = i == 0 ? trace_once : std::string();
        cells.push_back([o, &m, trace]() {
            o->iso = m3vCloud(false, m.mix, &o->diso, trace,
                              std::string("m3v_isolated_") + m.name);
        });
        cells.push_back([o, &m]() {
            o->sh = m3vCloud(true, m.mix, &o->dsh, "",
                             std::string("m3v_shared_") + m.name);
        });
        cells.push_back([o, &m]() { o->lin = linuxCloud(m.mix); });
    }
    sim::runCells(obs.jobs, std::move(cells));
    for (std::size_t i = 0; i < kMixes; i++) {
        std::printf("\n%s workload:\n", mixes[i].name);
        printRow("M3v (isolated)", outs[i].iso);
        printRow("M3v (shared)", outs[i].sh);
        printRow("Linux", outs[i].lin);
        dump.absorb(outs[i].diso);
        dump.absorb(outs[i].dsh);
    }
    std::printf("\nNote: isolated M3v uses multiple tiles and is "
                "shown for completeness only\n(as in the paper); "
                "user/system attribution follows section 6.5.2.\n");
    dump.write(obs.metricsOut);
    return 0;
}
