/**
 * @file
 * Controller-sharding storm benchmark (DESIGN.md section 4i): an
 * open-loop activity-creation storm — create/delegate/revoke/destroy
 * capability operations arriving on every user tile at a fixed
 * simulated rate — run against 1, 2, and 4 controller shards on the
 * same 16-tile platform.
 *
 * Cross-shard traffic is Zipf-skewed: each created activity lands on
 * a tile drawn from a Zipf distribution centred on the creator's own
 * tile, so most capability edges stay inside a quadrant and a
 * skewed tail crosses controllers.
 *
 * Reported per shard count: simulated syscalls/sec (the controller
 * capacity the storm actually extracted), p50/p99 op latency against
 * the open-loop arrival schedule, cross-shard message counts, and a
 * state digest. Each shard count runs under --jobs = 1, 2 and 4
 * worker threads and must produce byte-identical digests (the
 * determinism contract of the cell runner); host-side wall clock and
 * the shards=4 vs shards=1 speedup go to BENCH_controller.json
 * (--storm-out=), never to stdout.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "os/system.h"
#include "sim/lane.h"
#include "sim/open_loop.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "workloads/zipf.h"

namespace {

using namespace m3v;
using namespace m3v::os;
using dtu::Error;

constexpr unsigned kUserTiles = 16;
/**
 * Storm drivers per tile. One driver has at most one syscall in
 * flight, so per-tile multiplexed drivers set the offered concurrency
 * (Little's law): 3 per tile keeps every controller's ring non-empty
 * even at 4 shards, making the measurement capacity- rather than
 * latency-bound.
 */
constexpr unsigned kDriversPerTile = 3;
constexpr unsigned kDrivers = kUserTiles * kDriversPerTile;

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

struct StormConfig
{
    unsigned shards = 1;
    std::uint64_t totalOps = 120000;
    double ratePerSec = 0; ///< aggregate arrival rate; 0 = default
    double theta = 2.5;    ///< Zipf skew of the target-tile draw
    std::uint64_t seed = 42;
};

struct StormResult
{
    unsigned shards = 1;
    std::uint64_t ops = 0;      ///< completed syscalls
    std::uint64_t errors = 0;   ///< non-None syscall responses
    std::uint64_t xshardSent = 0;
    std::uint64_t xshardTimeouts = 0;
    std::uint64_t reaps = 0;
    std::uint64_t crossOps = 0; ///< ops whose target tile crossed shards
    sim::Tick makespan = 0;     ///< last op completion (simulated)
    double p50Us = 0;
    double p99Us = 0;
    std::uint64_t digest = 0;
    double wallMs = 0; ///< host wall clock of this cell
    std::string invReport; ///< empty = invariants clean
};

/** Exact open-loop sleep: one scheduled wake, no core burn. */
sim::Task
sleepUntil(sim::EventQueue &eq, MuxEnv &env, sim::Tick at)
{
    tile::Thread &t = env.thread();
    t.clearWake();
    eq.scheduleAt(at, [&t]() { t.wake(); });
    co_await t.externalWait();
}

struct DriverState
{
    unsigned idx = 0;
    unsigned tile = 0;
    unsigned shard = 0;
    std::vector<CapSel> roots;
    struct Storm
    {
        CapSel actSel = kInvalidSel;
        unsigned shard = 0;
        std::vector<CapSel> dels; ///< delegated copies in its table
    };
    std::vector<Storm> storms;
    std::uint64_t digest = 0xcbf29ce484222325ull;
    std::vector<double> latUs;
};

sim::Task
driverBody(sim::EventQueue &eq, MuxEnv &env, System &sys,
           DriverState &d, const StormConfig &cfg,
           std::uint64_t nops, StormResult &res)
{
    sim::OpenLoopSource src(cfg.seed ^ (0xC7A1 + d.idx),
                            cfg.ratePerSec / kDrivers);
    sim::Rng rng(cfg.seed ^ (0x570B + d.idx));
    workloads::Zipfian zipf(kUserTiles, cfg.theta);

    for (std::uint64_t i = 0; i < nops; i++) {
        sim::Tick at = src.next();
        if (eq.now() < at)
            co_await sleepUntil(eq, env, at);
        // Behind schedule: issue immediately, the queueing delay is
        // part of the measured latency (open-loop, no client shed —
        // every storm completes all its ops so digests can agree).

        SyscallReq req;
        SyscallResp resp;
        std::uint64_t pick = rng.nextBounded(100);
        bool cross = false;

        if (pick < 20 || d.storms.size() < 2) {
            // Create an activity on a Zipf-skewed tile: rank 0 is
            // the creator's own tile, the tail walks the ring.
            auto tile = static_cast<unsigned>(
                (d.tile + zipf.next(rng)) % kUserTiles);
            req.op = SyscallReq::Op::CreateAct;
            req.arg0 = tile;
            co_await env.syscall(req, &resp);
            if (resp.err == Error::None) {
                DriverState::Storm s;
                s.actSel = static_cast<CapSel>(resp.val >> 32);
                s.shard = sys.shardMap().shardOfTile(tile);
                if (d.storms.size() >= 6) {
                    // Bound the working set: forget the oldest (its
                    // caps persist and stay in the final digest, but
                    // it takes no further delegations).
                    d.storms.erase(d.storms.begin());
                }
                d.storms.push_back(s);
                cross = s.shard != d.shard;
            }
        } else if (pick < 60) {
            DriverState::Storm &s =
                d.storms[rng.nextBounded(d.storms.size())];
            req.op = SyscallReq::Op::Delegate;
            req.arg0 = s.actSel;
            req.arg1 = d.roots[rng.nextBounded(d.roots.size())];
            co_await env.syscall(req, &resp);
            if (resp.err == Error::None)
                s.dels.push_back(static_cast<CapSel>(resp.val));
            cross = s.shard != d.shard;
        } else if (pick < 80) {
            // Sever one root's delegation subtree (keep the root):
            // the revoke walks every shard the copies landed on.
            CapSel root = d.roots[rng.nextBounded(d.roots.size())];
            req.op = SyscallReq::Op::Revoke;
            req.arg0 = root;
            req.arg1 = 1;
            co_await env.syscall(req, &resp);
            for (DriverState::Storm &s : d.storms) {
                cross = cross || (!s.dels.empty() &&
                                  s.shard != d.shard);
                s.dels.clear();
            }
        } else {
            std::size_t victim = rng.nextBounded(d.storms.size());
            DriverState::Storm s = d.storms[victim];
            req.op = SyscallReq::Op::DestroyAct;
            req.arg0 = s.actSel;
            co_await env.syscall(req, &resp);
            if (resp.err == Error::None)
                d.storms.erase(d.storms.begin() + victim);
            cross = s.shard != d.shard;
        }

        sim::Tick done = eq.now();
        if (resp.err != Error::None)
            res.errors++;
        res.ops++;
        if (cross)
            res.crossOps++;
        res.makespan = std::max(res.makespan, done);
        d.latUs.push_back(sim::ticksToUs(done - at));
        d.digest = fnv(d.digest, i);
        d.digest = fnv(d.digest, static_cast<std::uint64_t>(
                                     resp.err));
        d.digest = fnv(d.digest, resp.val);
        d.digest = fnv(d.digest, done);
    }
}

StormResult
runStorm(const StormConfig &cfg)
{
    double t0 = bench::wallMs();
    sim::EventQueue eq;
    SystemParams params;
    params.userTiles = kUserTiles;
    params.ctrlShards = cfg.shards;
    // 16 tiles x the default 4 MiB PMP window would exhaust the
    // 64 MiB memory tile before the storm's mgates are carved.
    params.perTilePmp = 1 << 20;
    System sys(eq, params);
    sim::Invariants inv;
    registerControllerInvariants(inv, sys);

    StormResult res;
    res.shards = cfg.shards;

    std::vector<DriverState> drivers(kDrivers);
    std::vector<System::App *> apps(kDrivers);
    for (unsigned i = 0; i < kDrivers; i++) {
        DriverState &d = drivers[i];
        d.idx = i;
        d.tile = i % kUserTiles;
        d.shard = sys.shardMap().shardOfTile(d.tile);
        apps[i] = sys.createApp(d.tile, "storm" + std::to_string(i));
        for (int r = 0; r < 3; r++)
            d.roots.push_back(
                sys.makeMgate(apps[i], 16 << 10, dtu::kPermRW).sel);
    }

    std::uint64_t per = cfg.totalOps / kDrivers;
    for (unsigned i = 0; i < kDrivers; i++) {
        DriverState &d = drivers[i];
        sys.start(apps[i], [&eq, &sys, &d, &cfg, per,
                            &res](MuxEnv &env) -> sim::Task {
            return driverBody(eq, env, sys, d, cfg, per, res);
        });
    }
    eq.run();

    inv.runAll(true);
    if (!inv.ok())
        res.invReport = inv.report();

    // Latency percentiles over the merged, sorted sample set.
    std::vector<double> lat;
    for (DriverState &d : drivers)
        lat.insert(lat.end(), d.latUs.begin(), d.latUs.end());
    std::sort(lat.begin(), lat.end());
    if (!lat.empty()) {
        res.p50Us = lat[lat.size() / 2];
        res.p99Us = lat[static_cast<std::size_t>(
            static_cast<double>(lat.size() - 1) * 0.99)];
    }

    // Digest: per-driver op streams in driver order, then the final
    // capability-forest shape and the shard counters.
    res.digest = 0xcbf29ce484222325ull;
    for (const DriverState &d : drivers)
        res.digest = fnv(res.digest, d.digest);
    for (unsigned s = 0; s < sys.ctrlShards(); s++) {
        std::uint64_t caps = 0;
        sys.capsOf(s).forEachTable([&](CapTable &t) {
            t.forEachCap([&](Capability &c) {
                caps = fnv(caps, t.owner());
                caps = fnv(caps, c.sel());
            });
        });
        const Controller &c = sys.controllerOf(s);
        res.digest = fnv(res.digest, caps);
        res.digest = fnv(res.digest, c.xshardSent());
        res.digest = fnv(res.digest, c.xshardHandled());
        res.xshardSent += c.xshardSent();
        res.xshardTimeouts += c.xshardTimeouts();
        res.reaps += c.activitiesReaped();
    }
    res.wallMs = bench::wallMs() - t0;
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    StormConfig base;
    std::string storm_out;
    for (int i = 1; i < argc; i++) {
        if (!std::strncmp(argv[i], "--ops=", 6))
            base.totalOps = std::strtoull(argv[i] + 6, nullptr, 10);
        else if (!std::strncmp(argv[i], "--rate=", 7))
            base.ratePerSec = std::atof(argv[i] + 7);
        else if (!std::strncmp(argv[i], "--theta=", 8))
            base.theta = std::atof(argv[i] + 8);
        else if (!std::strncmp(argv[i], "--seed=", 7))
            base.seed = std::strtoull(argv[i] + 7, nullptr, 10);
        else if (!std::strncmp(argv[i], "--storm-out=", 12))
            storm_out = argv[i] + 12;
        // Unknown args ignored (harness compatibility).
    }
    if (base.ratePerSec <= 0) {
        // Default: ~4x one controller's capacity and ~1.4x four
        // shards' — every shard count is saturated (so syscalls/sec
        // measures capacity, not the arrival rate) while the p99 gap
        // still shows 4 shards nearly absorbing the storm.
        base.ratePerSec = 8e5;
    }

    bench::banner("ctrl_storm",
                  "sharded controller: activity-creation storm");
    std::printf("ops=%llu, rate=%.2gM syscalls/s aggregate, "
                "zipf theta=%.2f, tiles=%u\n",
                static_cast<unsigned long long>(base.totalOps),
                base.ratePerSec / 1e6, base.theta, kUserTiles);

    const std::vector<unsigned> shard_counts = {1, 2, 4};
    const std::vector<unsigned> jobs_sweep = {1, 2, 4};

    // cells[j][s] = result of shard_counts[s] under jobs_sweep[j].
    std::vector<std::vector<StormResult>> cells(jobs_sweep.size());
    std::vector<double> sweepWallMs(jobs_sweep.size());
    for (std::size_t j = 0; j < jobs_sweep.size(); j++) {
        cells[j].resize(shard_counts.size());
        std::vector<sim::UniqueFunction<void()>> work;
        for (std::size_t s = 0; s < shard_counts.size(); s++) {
            StormConfig cfg = base;
            cfg.shards = shard_counts[s];
            StormResult *slot = &cells[j][s];
            work.emplace_back(
                [cfg, slot]() { *slot = runStorm(cfg); });
        }
        double t0 = bench::wallMs();
        sim::runCells(jobs_sweep[j], std::move(work));
        sweepWallMs[j] = bench::wallMs() - t0;
    }

    // Determinism contract: per shard count, all jobs sweeps agree.
    for (std::size_t s = 0; s < shard_counts.size(); s++) {
        for (std::size_t j = 1; j < jobs_sweep.size(); j++) {
            if (cells[j][s].digest != cells[0][s].digest ||
                cells[j][s].ops != cells[0][s].ops)
                sim::panic("ctrl_storm: shards=%u diverges between "
                           "jobs=1 and jobs=%u (digest %016llx vs "
                           "%016llx)",
                           shard_counts[s], jobs_sweep[j],
                           static_cast<unsigned long long>(
                               cells[0][s].digest),
                           static_cast<unsigned long long>(
                               cells[j][s].digest));
        }
        if (!cells[0][s].invReport.empty())
            sim::panic("ctrl_storm: shards=%u invariant "
                       "violations:\n%s",
                       shard_counts[s],
                       cells[0][s].invReport.c_str());
    }

    sim::TablePrinter table({"shards", "syscalls/s", "p50 us",
                             "p99 us", "makespan ms", "x-shard",
                             "errors", "digest"});
    std::vector<double> rate(shard_counts.size());
    for (std::size_t s = 0; s < shard_counts.size(); s++) {
        const StormResult &r = cells[0][s];
        rate[s] = r.ops / sim::ticksToSec(r.makespan);
        char digest_hex[32];
        std::snprintf(digest_hex, sizeof(digest_hex), "%016llx",
                      static_cast<unsigned long long>(r.digest));
        table.addRow({std::to_string(r.shards),
                      sim::fmtDouble(rate[s], 0),
                      sim::fmtDouble(r.p50Us, 1),
                      sim::fmtDouble(r.p99Us, 1),
                      sim::fmtDouble(sim::ticksToMs(r.makespan), 2),
                      std::to_string(r.xshardSent),
                      std::to_string(r.errors), digest_hex});
    }
    table.print();
    std::printf("\nSimulated speedup (syscalls/s): shards=2 %.2fx, "
                "shards=4 %.2fx over shards=1; cross-shard op "
                "fraction %.0f%% at shards=4.\n",
                rate[1] / rate[0], rate[2] / rate[0],
                100.0 * cells[0][2].crossOps /
                    std::max<std::uint64_t>(1, cells[0][2].ops));

    // Host-side numbers: stderr + --storm-out only.
    unsigned hw = std::thread::hardware_concurrency();
    for (std::size_t j = 0; j < jobs_sweep.size(); j++)
        std::fprintf(stderr, "jobs=%u sweep: %.1f ms host wall\n",
                     jobs_sweep[j], sweepWallMs[j]);

    if (!storm_out.empty()) {
        FILE *f = std::fopen(storm_out.c_str(), "w");
        if (!f)
            sim::panic("ctrl_storm: cannot write %s",
                       storm_out.c_str());
        std::fprintf(f,
                     "{\n  \"bench\": \"ctrl_storm\",\n"
                     "  \"ops\": %llu,\n"
                     "  \"user_tiles\": %u,\n"
                     "  \"zipf_theta\": %.2f,\n"
                     "  \"rate_per_sec\": %.0f,\n"
                     "  \"hw_concurrency\": %u,\n"
                     "  \"jobs_checked\": [1, 2, 4],\n"
                     "  \"shards\": [\n",
                     static_cast<unsigned long long>(base.totalOps),
                     kUserTiles, base.theta, base.ratePerSec, hw);
        for (std::size_t s = 0; s < shard_counts.size(); s++) {
            const StormResult &r = cells[0][s];
            std::fprintf(
                f,
                "    {\n      \"shards\": %u,\n"
                "      \"ops\": %llu,\n"
                "      \"errors\": %llu,\n"
                "      \"syscalls_per_sec\": %.0f,\n"
                "      \"p50_us\": %.2f,\n"
                "      \"p99_us\": %.2f,\n"
                "      \"makespan_ms\": %.3f,\n"
                "      \"xshard_sent\": %llu,\n"
                "      \"xshard_timeouts\": %llu,\n"
                "      \"cross_op_fraction\": %.3f,\n"
                "      \"digest\": \"%016llx\",\n"
                "      \"wall_ms_jobs1\": %.3f,\n"
                "      \"wall_ms_jobs2\": %.3f,\n"
                "      \"wall_ms_jobs4\": %.3f\n    }%s\n",
                r.shards, static_cast<unsigned long long>(r.ops),
                static_cast<unsigned long long>(r.errors), rate[s],
                r.p50Us, r.p99Us, sim::ticksToMs(r.makespan),
                static_cast<unsigned long long>(r.xshardSent),
                static_cast<unsigned long long>(r.xshardTimeouts),
                static_cast<double>(r.crossOps) /
                    std::max<std::uint64_t>(1, r.ops),
                static_cast<unsigned long long>(r.digest),
                cells[0][s].wallMs, cells[1][s].wallMs,
                cells[2][s].wallMs,
                s + 1 < shard_counts.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        // The simulated speedups are deterministic; the speedup keys
        // are still only emitted on hosts that could actually verify
        // the jobs=4 sweep in parallel (ci/bench_smoke.sh skips the
        // comparison when they are absent — same contract as the
        // fig09 mesh rows).
        std::fprintf(f, "  \"speedup_valid\": %s",
                     hw >= 4 ? "true" : "false");
        if (hw >= 4)
            std::fprintf(f,
                         ",\n  \"speedup_shards2\": %.3f,\n"
                         "  \"speedup_shards4\": %.3f",
                         rate[1] / rate[0], rate[2] / rate[0]);
        std::fprintf(f, "\n}\n");
        std::fclose(f);
    }
    return 0;
}
