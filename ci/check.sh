#!/bin/sh
# Tier-1 verification: build and run the full test suite twice —
# once plain (the configuration the benchmarks use) and once under
# ASan + UBSan (M3VSIM_SANITIZE=ON), chaos/robustness tests included.
# Run from the repository root: ./ci/check.sh
set -eu

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== sanitized build (ASan + UBSan) =="
cmake -B build-asan -S . -DM3VSIM_SANITIZE=ON >/dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j "$(nproc)")

echo "== sanitized re-run: observability + lifecycle regressions =="
# The metrics/trace layer and the activity-teardown paths are the
# most UB-prone (handle lifetimes, histogram arithmetic); run them
# again explicitly so a filter typo above cannot silently skip them.
(cd build-asan && ctest --output-on-failure -R \
    'MetricsRegistry|Tracer\.|JsonEscape|Histogram\.|Sampler\.|ResetAct|Restart')

echo "== all checks passed =="
