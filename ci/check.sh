#!/bin/sh
# Tier-1 verification: build and run the full test suite twice —
# once plain (the configuration the benchmarks use) and once under
# ASan + UBSan (M3VSIM_SANITIZE=ON), chaos/robustness tests included —
# then run the parallel-execution tests under TSan
# (M3VSIM_SANITIZE=thread).
# Run from the repository root: ./ci/check.sh
set -eu

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== fuzz smoke: protocol fuzzer, fixed seeds =="
# >=10k generated scenarios (5 seed streams) through the single-queue
# rig with every invariant attached at stride 1, plus differential
# runs (laned jobs=1 vs jobs=4 must produce identical digests). Any
# invariant trip, reference-model mismatch, or divergence fails.
build/tests/fuzz/fuzz_driver --seeds=5 --seqs=2100 --diff=25 \
    --faults=both --caps=10

echo "== fleet smoke: overload + chaos drill, jobs=1 vs jobs=4 =="
# Small-config open-loop fleet with the chaos drill (two tile kills +
# NoC degradation mid-burst): must shed load via typed errors, keep
# every invariant clean, and print/summarize byte-identically for any
# worker count.
FLEET1=$(mktemp) FLEET4=$(mktemp)
build/bench/fleet --tenants=100 --rate=6000 --chaos --jobs=1 \
    --summary-out="$FLEET1" >/dev/null
build/bench/fleet --tenants=100 --rate=6000 --chaos --jobs=4 \
    --summary-out="$FLEET4" >/dev/null
cmp "$FLEET1" "$FLEET4" || {
    echo "FAIL: fleet summary differs between --jobs=1 and --jobs=4" >&2
    exit 1
}
rm -f "$FLEET1" "$FLEET4"

echo "== mesh scaling: 64-tile sweep, jobs=4 speedup =="
# Measured parallel speedup of the router-sharded 64-tile mesh on the
# plain build. Below four hardware threads a jobs=4 run cannot
# express real parallelism — the assertion is skipped with a notice
# rather than failing small runners.
if [ "$(nproc)" -ge 4 ]; then
    MESH_PERF=$(mktemp)
    M3V_FIG09_TILES=64 build/bench/fig09_scale --mesh-only \
        --scale-out="$MESH_PERF"
    jq -e '.mesh[0].jobs1_wall_ms / .mesh[0].jobs4_wall_ms > 1.15' \
        "$MESH_PERF" >/dev/null || {
        echo "FAIL: 64-tile mesh jobs=4 speedup <= 1.15" >&2
        jq '.mesh[0]' "$MESH_PERF" >&2
        exit 1
    }
    echo "mesh jobs=4 speedup: $(jq '.mesh[0].speedup4' "$MESH_PERF")"
    rm -f "$MESH_PERF"
else
    echo "NOTE: fewer than 4 hardware threads -- mesh jobs=4" \
         "speedup assertion skipped"
fi

echo "== sanitized build (ASan + UBSan) =="
cmake -B build-asan -S . -DM3VSIM_SANITIZE=ON >/dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j "$(nproc)")

echo "== fuzz smoke under ASan (bounded) =="
# Smaller corpus (sanitizer overhead), same fixed seeds: memory bugs
# in the protocol engines surface here before they corrupt state.
build-asan/tests/fuzz/fuzz_driver --seeds=5 --seqs=300 --diff=10 \
    --faults=both --caps=3

echo "== sharded controller under ASan (cross-shard revoke paths) =="
# Two-phase revocation frees capability subtrees across shards while
# peers still hold RemoteRefs into them, and crash reaping tears down
# tables with in-flight protocol state — the dangling-pointer
# surface ASan exists for. (The full build-asan ctest above already
# ran these; the explicit re-run keeps a filter typo from silently
# skipping the newest protocol tests.)
(cd build-asan && ctest --output-on-failure -R 'Shard|CapsFuzz')

echo "== fleet smoke under ASan =="
# The chaos drill tears down tiles with live retransmission state and
# drains stale replies after deadline abandonment — the exact handle
# lifetimes ASan is for.
build-asan/bench/fleet --tenants=100 --rate=6000 --chaos >/dev/null

echo "== fan-in microbench under ASan (bounded) =="
# The zero-copy slab path hands one refcounted extent through wire,
# mailbox and recv slot: exactly the shared-ownership lifetimes ASan
# checks. Bounded iterations — this is a correctness pass, the
# timing numbers are discarded.
cmake --build build-asan -j --target fanin
build-asan/bench/fanin --msgs=2000 --out="" >/dev/null

echo "== sanitized re-run: observability + lifecycle regressions =="
# The metrics/trace layer and the activity-teardown paths are the
# most UB-prone (handle lifetimes, histogram arithmetic); run them
# again explicitly so a filter typo above cannot silently skip them.
(cd build-asan && ctest --output-on-failure -R \
    'MetricsRegistry|Tracer\.|JsonEscape|Histogram\.|Sampler\.|ResetAct|Restart')

echo "== TSan build: parallel event execution =="
# Everything that runs worker threads: the SPSC mailboxes, the lane
# scheduler's barrier rounds, the sharded NoC, and the --jobs cell
# runner. Death tests are excluded (fork under TSan is unreliable);
# the plain and ASan passes above cover them.
cmake -B build-tsan -S . -DM3VSIM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target sim_lane_test noc_lane_test \
    fuzz_driver fanin
build-tsan/tests/sim/sim_lane_test --gtest_filter='-*Panic*'
build-tsan/tests/noc/noc_lane_test

echo "== mesh sweep under TSan (64 tiles, router-sharded) =="
# The 64-tile k-ary mesh runs one lane per router with whole-lane
# work-stealing: 16 lanes exchanging packets and credit returns
# through LaneLinks while per-pair windows advance — the densest
# threaded path in the tree. Death tests excluded as above. Needs a
# second hardware thread for real concurrency under TSan.
if [ "$(nproc)" -ge 2 ]; then
    cmake --build build-tsan -j --target noc_mesh_test fig09_scale
    build-tsan/tests/noc/noc_mesh_test --gtest_filter='-*TypedError*'
    MESH_TSAN=$(mktemp)
    M3V_FIG09_TILES=64 build-tsan/bench/fig09_scale --mesh-only \
        --scale-out="$MESH_TSAN" >/dev/null
    rm -f "$MESH_TSAN"
else
    echo "NOTE: single hardware thread -- TSan mesh sweep skipped"
fi

echo "== sharded controller under TSan (caps differential) =="
# The caps-fuzz differential runs four sharded-controller cells on
# jobs=4 worker threads through runCells — per-cell Systems must stay
# thread-local and the merged digests identical with the race
# detector watching. Needs a second hardware thread for real
# concurrency under TSan.
if [ "$(nproc)" -ge 2 ]; then
    cmake --build build-tsan -j --target os_shard_test caps_fuzz_test
    build-tsan/tests/os/os_shard_test
    build-tsan/tests/fuzz/caps_fuzz_test
else
    echo "NOTE: single hardware thread -- TSan sharded-controller" \
         "stage skipped"
fi

echo "== fan-in microbench under TSan (bounded) =="
# The slab pool's refcount mutex and the COW hand-off are the
# cross-thread contract of the zero-copy path (lane workers share
# the pool); run the fan-in traffic with the race detector watching.
build-tsan/bench/fanin --msgs=2000 --out="" >/dev/null

echo "== fuzz smoke under TSan (differential only, bounded) =="
# Laned differential runs are the threaded path: per-lane invariant
# registries must stay lane-local, and jobs=1 vs jobs=4 digests must
# match with the race detector watching.
build-tsan/tests/fuzz/fuzz_driver --seeds=2 --seqs=0 --diff=15 \
    --faults=both

echo "== all checks passed =="
