#!/bin/sh
# Tier-1 verification: build and run the full test suite twice —
# once plain (the configuration the benchmarks use) and once under
# ASan + UBSan (M3VSIM_SANITIZE=ON), chaos/robustness tests included —
# then run the parallel-execution tests under TSan
# (M3VSIM_SANITIZE=thread).
# Run from the repository root: ./ci/check.sh
set -eu

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== sanitized build (ASan + UBSan) =="
cmake -B build-asan -S . -DM3VSIM_SANITIZE=ON >/dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j "$(nproc)")

echo "== sanitized re-run: observability + lifecycle regressions =="
# The metrics/trace layer and the activity-teardown paths are the
# most UB-prone (handle lifetimes, histogram arithmetic); run them
# again explicitly so a filter typo above cannot silently skip them.
(cd build-asan && ctest --output-on-failure -R \
    'MetricsRegistry|Tracer\.|JsonEscape|Histogram\.|Sampler\.|ResetAct|Restart')

echo "== TSan build: parallel event execution =="
# Everything that runs worker threads: the SPSC mailboxes, the lane
# scheduler's barrier rounds, the sharded NoC, and the --jobs cell
# runner. Death tests are excluded (fork under TSan is unreliable);
# the plain and ASan passes above cover them.
cmake -B build-tsan -S . -DM3VSIM_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target sim_lane_test noc_lane_test
build-tsan/tests/sim/sim_lane_test --gtest_filter='-*Panic*'
build-tsan/tests/noc/noc_lane_test

echo "== all checks passed =="
