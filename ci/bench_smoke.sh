#!/bin/sh
# Event-core benchmark smoke run: exercises the simulator's hot path
# (micro_sim event-queue benchmarks) plus a reduced fig09 scalability
# run, and records the headline numbers in BENCH_eventcore.json so
# regressions show up in review diffs.
#
# Run from the repository root: ./ci/bench_smoke.sh
# Output: BENCH_eventcore.json (repo root).
set -eu

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_eventcore.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target micro_sim fig09_scale

echo "== micro_sim (event-queue benchmarks) =="
MICRO_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON"' EXIT
"$BUILD_DIR/bench/micro_sim" \
    --benchmark_filter='BM_EventQueue|BM_TaskChain' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json >"$MICRO_JSON"
jq -r '.benchmarks[] | "\(.name): \(.real_time | floor) ns"' \
    "$MICRO_JSON"

echo "== fig09_scale (reduced: 4 tiles max) =="
M3V_FIG09_TILES=4 "$BUILD_DIR/bench/fig09_scale"

# Headline metrics: steady-state schedule/fire cost, throughput, and
# the largest standing backlog the mixed-horizon benchmark held.
jq '{
  ns_per_event: (
    [.benchmarks[] | select(.name == "BM_EventQueueScheduleFire")
     | .real_time][0]),
  events_per_sec: (
    [.benchmarks[] | select(.name == "BM_EventQueueScheduleFire")
     | .items_per_second][0]),
  peak_pending: (
    [.benchmarks[] | select(.name | startswith("BM_EventQueueMixedHorizon"))
     | .pending] | max),
  benchmarks: [.benchmarks[] | {
    name, ns_per_op: .real_time,
    items_per_sec: (.items_per_second // null),
    pending: (.pending // null)
  }]
}' "$MICRO_JSON" >"$OUT"

echo "== wrote $OUT =="
jq '{ns_per_event, events_per_sec, peak_pending}' "$OUT"
