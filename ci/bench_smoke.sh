#!/bin/sh
# Event-core benchmark smoke run: exercises the simulator's hot path
# (micro_sim event-queue benchmarks) plus a reduced fig09 scalability
# run, and records the headline numbers in BENCH_eventcore.json so
# regressions show up in review diffs.
#
# Run from the repository root: ./ci/bench_smoke.sh
# Output: BENCH_eventcore.json (repo root).
set -eu

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${OUT:-BENCH_eventcore.json}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target micro_sim fig09_scale fanin \
    ctrl_storm

echo "== micro_sim (event-queue benchmarks) =="
MICRO_JSON=$(mktemp)
METRICS_JSON=""
TRACE_JSON=""
trap 'rm -f "$MICRO_JSON" "$METRICS_JSON" "$TRACE_JSON"' EXIT
"$BUILD_DIR/bench/micro_sim" \
    --benchmark_filter='BM_EventQueue|BM_TaskChain' \
    --benchmark_min_time=0.2 \
    --benchmark_format=json >"$MICRO_JSON"
jq -r '.benchmarks[] | "\(.name): \(.real_time | floor) ns"' \
    "$MICRO_JSON"

echo "== fig09_scale (reduced: 4 tiles max) =="
M3V_FIG09_TILES=4 "$BUILD_DIR/bench/fig09_scale"

echo "== fig09_scale scaling: --jobs=1 vs --jobs=4 =="
# Host-side parallel speedup of the cellized sweep. The two runs must
# print byte-identical figures (determinism contract); wall-clock and
# throughput go into BENCH_scale.json. Speedup needs free cores: on a
# single-core runner the jobs=4 numbers simply match jobs=1.
SCALE_OUT="${SCALE_OUT:-BENCH_scale.json}"
PERF1=$(mktemp) PERF4=$(mktemp) OUT1=$(mktemp) OUT4=$(mktemp)
M3V_FIG09_TILES=4 "$BUILD_DIR/bench/fig09_scale" --jobs=1 \
    --perf-out="$PERF1" >"$OUT1"
M3V_FIG09_TILES=4 "$BUILD_DIR/bench/fig09_scale" --jobs=4 \
    --perf-out="$PERF4" >"$OUT4"
cmp "$OUT1" "$OUT4" || {
    echo "FAIL: fig09 output differs between --jobs=1 and --jobs=4" >&2
    exit 1
}
# On a single-hardware-thread runner the jobs=4 run cannot go faster
# than jobs=1; the speedup figure is meaningless noise there, so the
# "speedup" key is emitted only when it is a real measurement — a
# null would read as a broken run in review diffs, and downstream
# smoke checks must skip the comparison instead of comparing to null.
jq -n --slurpfile j1 "$PERF1" --slurpfile j4 "$PERF4" \
    --argjson cpus "$(nproc)" '{
  bench: "fig09_scale (M3V_FIG09_TILES=4)",
  host_cpus: $cpus,
  hw_concurrency: $j1[0].hw_concurrency,
  jobs_config: [$j1[0].jobs, $j4[0].jobs],
  jobs1: $j1[0],
  jobs4: $j4[0],
  speedup_valid: ($j1[0].hw_concurrency > 1)
} + (if $j1[0].hw_concurrency > 1 and $j4[0].wall_ms > 0
     then {speedup: ($j1[0].wall_ms / $j4[0].wall_ms)} else {} end)
' >"$SCALE_OUT"
rm -f "$PERF1" "$PERF4" "$OUT1" "$OUT4"

echo "== fig09_scale mesh fabric sweep (64/256 tiles) =="
# The k-ary mesh sweep: per tile count, the same workload runs at
# jobs=1/2/4 and must produce identical digests (the bench aborts
# otherwise). Wall-clock rows merge into BENCH_scale.json under
# "mesh"; per-row speedup keys appear only on hosts with >= 4
# hardware threads (speedup_valid).
MESH_JSON=$(mktemp)
M3V_FIG09_TILES=256 "$BUILD_DIR/bench/fig09_scale" --mesh-only \
    --scale-out="$MESH_JSON"
jq --slurpfile m "$MESH_JSON" '. + {mesh: $m[0].mesh}' \
    "$SCALE_OUT" >"$SCALE_OUT.tmp" && mv "$SCALE_OUT.tmp" "$SCALE_OUT"
rm -f "$MESH_JSON"

echo "== wrote $SCALE_OUT =="
if [ "$(jq '.speedup_valid' "$SCALE_OUT")" = "false" ]; then
    echo "NOTE: hw_concurrency == 1 -- jobs=1 vs jobs=4 speedup" \
         "comparison skipped (speedup_valid: false)"
fi
jq '{host_cpus, speedup_valid,
     speedup: (.speedup // "skipped"),
     jobs1: .jobs1.wall_ms, jobs4: .jobs4.wall_ms,
     mesh_tiles: [.mesh[].tiles]}' "$SCALE_OUT"

echo "== bench/fanin (zero-copy message path vs copying baseline) =="
# Reduced message count: this is a smoke run that checks the slab
# path works end to end and records the msgs/sec + copies/msg
# figures; the full-size run is for perf investigation.
MSGPATH_OUT="${MSGPATH_OUT:-BENCH_msgpath.json}"
"$BUILD_DIR/bench/fanin" --msgs=4000 --out="$MSGPATH_OUT"
echo "== wrote $MSGPATH_OUT =="
jq '{k16_speedup: ."k16.speedup",
     k16_zero_copy_copies: ."k16.zero_copy.byte_copies",
     k16_baseline_copies: ."k16.copy_baseline.byte_copies"}' \
    "$MSGPATH_OUT"

echo "== bench/ctrl_storm (sharded controller, 1/2/4 shards) =="
# The storm binary runs every shard count at --jobs=1/2/4 internally
# and aborts on any digest divergence, so a clean exit IS the
# determinism check. The simulated shards=4/shards=1 capacity ratio
# is deterministic; the speedup_shards* keys are still only emitted
# on hosts with >= 4 hardware threads (same absent-beats-null
# contract as the fig09 mesh rows).
CTRL_OUT="${CTRL_OUT:-BENCH_controller.json}"
"$BUILD_DIR/bench/ctrl_storm" ${CTRL_STORM_OPS:+--ops=$CTRL_STORM_OPS} \
    --storm-out="$CTRL_OUT"
echo "== wrote $CTRL_OUT =="
if [ "$(jq '.speedup_valid' "$CTRL_OUT")" = "false" ]; then
    echo "NOTE: hw_concurrency < 4 -- shards=4 vs shards=1 speedup" \
         "keys omitted (speedup_valid: false)"
fi
jq '{ops, hw_concurrency, speedup_valid,
     speedup_shards4: (.speedup_shards4 // "skipped"),
     syscalls_per_sec: [.shards[].syscalls_per_sec],
     p99_us: [.shards[].p99_us],
     xshard_timeouts: [.shards[].xshard_timeouts]}' "$CTRL_OUT"

echo "== fig06_micro observability smoke =="
cmake --build "$BUILD_DIR" -j --target fig06_micro
METRICS_JSON=$(mktemp)
TRACE_JSON=$(mktemp)
# (both are removed by the EXIT trap)
"$BUILD_DIR/bench/fig06_micro" \
    --metrics-out="$METRICS_JSON" \
    --trace-out="$TRACE_JSON" >/dev/null

# The metrics dump must carry instruments from every major subsystem
# (dtu, vdtu, tilemux, noc, m3x) and plausible values: the remote RPC
# run crosses the NoC, so deliveries and vDTU core requests are
# nonzero, and the M3x reference run context-switches through its
# kernel.
jq -e '
  .m3v_remote["ctrl.dtu.msgs_sent"] != null and
  .m3v_remote["tile0.vdtu.core_reqs"] != null and
  .m3v_remote["tile0.tilemux.switches"] != null and
  .m3v_remote["noc.delivered"] > 0 and
  (.m3v_remote | keys | map(select(startswith("tile0.vdtu"))) | length > 0) and
  .m3v_local["tile0.tilemux.tmcalls"] > 0 and
  .m3x["m3x.kernel.switches"] > 0 and
  .m3x["m3x.kernel.slowpaths"] > 0
' "$METRICS_JSON" >/dev/null || {
    echo "FAIL: metrics JSON is missing expected keys" >&2
    jq 'keys' "$METRICS_JSON" >&2 || cat "$METRICS_JSON" >&2
    exit 1
}

# The trace must be valid Chrome trace-event JSON with balanced
# B/E spans and named tracks.
jq -e '
  (.traceEvents | length) > 0 and
  (([.traceEvents[] | select(.ph == "B")] | length) ==
   ([.traceEvents[] | select(.ph == "E")] | length)) and
  (([.traceEvents[] | select(.ph == "M" and .name == "process_name")]
    | length) > 0)
' "$TRACE_JSON" >/dev/null || {
    echo "FAIL: trace JSON malformed or missing spans/metadata" >&2
    exit 1
}
echo "metrics+trace OK: $(jq '.traceEvents | length' "$TRACE_JSON") trace events"
rm -f "$METRICS_JSON" "$TRACE_JSON"

# Headline metrics: steady-state schedule/fire cost, throughput, and
# the largest standing backlog the mixed-horizon benchmark held.
jq '{
  ns_per_event: (
    [.benchmarks[] | select(.name == "BM_EventQueueScheduleFire")
     | .real_time][0]),
  events_per_sec: (
    [.benchmarks[] | select(.name == "BM_EventQueueScheduleFire")
     | .items_per_second][0]),
  peak_pending: (
    [.benchmarks[] | select(.name | startswith("BM_EventQueueMixedHorizon"))
     | .pending] | max),
  benchmarks: [.benchmarks[] | {
    name, ns_per_op: .real_time,
    items_per_sec: (.items_per_second // null),
    pending: (.pending // null)
  }]
}' "$MICRO_JSON" >"$OUT"

echo "== wrote $OUT =="
jq '{ns_per_event, events_per_sec, peak_pending}' "$OUT"
