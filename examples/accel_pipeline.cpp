/**
 * @file
 * The Figure 2 shell pipeline, end to end:
 *
 *     decode in.img | wht | filter | iwht > out.raw
 *
 * A software "decode" stage on a general-purpose tile reads the
 * image from m3fs, then three *autonomous accelerator tiles* apply a
 * Walsh-Hadamard transform, a high-pass filter in the transform
 * domain, and the inverse transform — chaining job descriptors from
 * tile to tile without any core in the loop — before the app writes
 * the result back to the file system.
 *
 *   $ ./examples/accel_pipeline
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "os/accel.h"
#include "os/system.h"
#include "services/m3fs.h"
#include "workloads/vfs_m3v.h"

using namespace m3v;
using os::AccelJob;
using os::Bytes;

namespace {

/** In-place integer Walsh-Hadamard transform over int16 samples
 *  (self-inverse up to a factor of n). */
void
wht(std::vector<std::int32_t> &v)
{
    for (std::size_t h = 1; h < v.size(); h *= 2) {
        for (std::size_t i = 0; i < v.size(); i += h * 2) {
            for (std::size_t j = i; j < i + h; j++) {
                std::int32_t x = v[j], y = v[j + h];
                v[j] = x + y;
                v[j + h] = x - y;
            }
        }
    }
}

std::vector<std::int32_t>
toInts(const Bytes &b)
{
    std::vector<std::int32_t> v(b.size() / 2);
    for (std::size_t i = 0; i < v.size(); i++) {
        std::int16_t s;
        std::memcpy(&s, b.data() + i * 2, 2);
        v[i] = s;
    }
    return v;
}

Bytes
toBytes(const std::vector<std::int32_t> &v, int shift)
{
    Bytes b(v.size() * 2);
    for (std::size_t i = 0; i < v.size(); i++) {
        auto s = static_cast<std::int16_t>(v[i] >> shift);
        std::memcpy(b.data() + i * 2, &s, 2);
    }
    return b;
}

} // namespace

int
main()
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 1;
    params.accelTiles = 3;
    params.dram.capacityBytes = 128 << 20;
    os::System sys(eq, params);

    services::M3fs fs(sys, 0);
    auto *app = sys.createApp(0, "decode");
    auto fs_client = fs.addClient(app);
    fs.startService();

    constexpr std::size_t kImage = 32 * 1024; // 16k samples
    auto buf_a = sys.makeMgate(app, 64 * 1024, dtu::kPermRW);
    auto buf_b = sys.makeMgate(app, 64 * 1024, dtu::kPermRW);
    auto done_rep = sys.makeRgate(app, 64, 4);

    // The three accelerator stages (real DSP on real bytes).
    os::AccelTile &fft = sys.accel(0);
    os::AccelTile &mul = sys.accel(1);
    os::AccelTile &ifft = sys.accel(2);
    fft.setTransform([](const Bytes &in) {
        auto v = toInts(in);
        wht(v);
        return toBytes(v, 7); // keep headroom (n = 16384 = 2^14)
    });
    mul.setTransform([](const Bytes &in) {
        // High-pass: zero the low-frequency half (Walsh order).
        Bytes out(in);
        std::memset(out.data(), 0, out.size() / 2);
        return out;
    });
    ifft.setTransform([](const Bytes &in) {
        auto v = toInts(in);
        wht(v);
        return toBytes(v, 7);
    });

    // Wire the chain: app -> fft(a->b) -> mul(b->b) -> ifft(b->a)
    // -> app. All endpoint setup is the controller's job; here the
    // harness performs it at boot.
    auto mem = [&](const os::System::MgateHandle &m) {
        return dtu::Endpoint::makeMem(0, sys.memTileId(m.memIdx),
                                      m.addr, m.size, dtu::kPermRW);
    };
    auto wire = [&](os::AccelTile &a,
                    const os::System::MgateHandle &in,
                    const os::System::MgateHandle &out,
                    noc::TileId next_tile, dtu::EpId next_ep) {
        a.dtu().configEp(os::kAccelCmdRep,
                         dtu::Endpoint::makeRecv(0, 64, 4));
        a.dtu().configEp(os::kAccelFwdSep,
                         dtu::Endpoint::makeSend(0, next_tile,
                                                 next_ep, 1, 4));
        a.dtu().configEp(os::kAccelInMep, mem(in));
        a.dtu().configEp(os::kAccelOutMep, mem(out));
    };
    wire(fft, buf_a, buf_b, mul.tileId(), os::kAccelCmdRep);
    wire(mul, buf_b, buf_b, ifft.tileId(), os::kAccelCmdRep);
    wire(ifft, buf_b, buf_a, sys.userTile(0), done_rep.ep);
    dtu::EpId cmd_sep = sys.allocEp(0);
    sys.vdtu(0).configEp(cmd_sep,
                         dtu::Endpoint::makeSend(app->act->id(),
                                                 fft.tileId(),
                                                 os::kAccelCmdRep, 1,
                                                 4));
    fft.startDriver();
    mul.startDriver();
    ifft.startDriver();

    sys.start(app, [&, fs_client, buf_a, done_rep,
                    cmd_sep](os::MuxEnv &env) -> sim::Task {
        workloads::M3vVfs vfs(env, fs_client);
        bool ok = false;

        // "decode": create the input image in the file system, then
        // stream it into the pipeline's input buffer.
        std::unique_ptr<workloads::VfsFile> f;
        co_await vfs.open("/in.img",
                          workloads::kVfsW | workloads::kVfsCreate,
                          &f, &ok);
        Bytes img(kImage);
        for (std::size_t i = 0; i < kImage / 2; i++) {
            auto s = static_cast<std::int16_t>(
                (i % 64 < 32 ? 400 : -400) + (i % 7) * 13);
            std::memcpy(img.data() + i * 2, &s, 2);
        }
        for (std::size_t off = 0; off < kImage; off += 4096)
            co_await f->write(
                Bytes(img.begin() + static_cast<long>(off),
                      img.begin() + static_cast<long>(off + 4096)),
                &ok);
        co_await f->close();

        std::unique_ptr<workloads::VfsFile> r;
        co_await vfs.open("/in.img", workloads::kVfsR, &r, &ok);
        dtu::Error err = dtu::Error::None;
        std::size_t off = 0;
        for (;;) {
            Bytes chunk;
            co_await r->read(4096, &chunk, &ok);
            if (chunk.empty())
                break;
            co_await env.writeMem(buf_a.ep, off, chunk, &err);
            off += chunk.size();
        }
        co_await r->close();
        std::printf("[%7.2f us] decode: %zu bytes into the pipeline\n",
                    sim::ticksToUs(eq.now()), off);

        // Kick the pipeline and wait for the final stage.
        AccelJob job;
        job.len = static_cast<std::uint32_t>(kImage);
        job.tag = 1;
        sim::Tick t0 = eq.now();
        co_await env.send(cmd_sep, os::podBytes(job),
                          dtu::kInvalidEp, &err);
        int slot = -1;
        co_await env.recvOn(done_rep.ep, &slot);
        co_await env.ackMsg(done_rep.ep, slot);
        std::printf("[%7.2f us] pipeline done in %.2f us (3 "
                    "autonomous stages)\n",
                    sim::ticksToUs(eq.now()),
                    sim::ticksToUs(eq.now() - t0));

        // Write the result back via m3fs.
        std::unique_ptr<workloads::VfsFile> w;
        co_await vfs.open("/out.raw",
                          workloads::kVfsW | workloads::kVfsCreate,
                          &w, &ok);
        std::size_t hi_energy = 0, total = 0;
        for (std::size_t o = 0; o < kImage; o += 4096) {
            Bytes page;
            co_await env.readMem(buf_a.ep, o, 4096, &page, &err);
            for (std::size_t i = 0; i + 1 < page.size(); i += 2) {
                std::int16_t s;
                std::memcpy(&s, page.data() + i, 2);
                total++;
                hi_energy += s != 0;
            }
            co_await w->write(std::move(page), &ok);
        }
        co_await w->close();
        std::printf("[%7.2f us] out.raw written: %zu/%zu non-zero "
                    "samples after high-pass\n",
                    sim::ticksToUs(eq.now()), hi_energy, total);
    });

    eq.run();
    std::printf("\nJobs per stage: wht=%llu filter=%llu iwht=%llu — "
                "the cores never touched the data in between.\n",
                static_cast<unsigned long long>(fft.jobsProcessed()),
                static_cast<unsigned long long>(mul.jobsProcessed()),
                static_cast<unsigned long long>(
                    ifft.jobsProcessed()));
    return 0;
}
