/**
 * @file
 * The cloud side of the voice pipeline (paper section 6.5.2):
 * leveldb-lite over m3fs, all service components (file system, net
 * stack, pager) sharing one BOOM tile with the database — yet still
 * isolated from each other as separate activities, unlike a
 * monolithic kernel. Runs a small YCSB mix and prints per-operation
 * statistics.
 *
 *   $ ./examples/cloud_service
 */

#include <cstdio>

#include "os/system.h"
#include "services/m3fs.h"
#include "services/net.h"
#include "services/pager.h"
#include "workloads/kv.h"
#include "workloads/vfs_m3v.h"
#include "workloads/ycsb.h"

using namespace m3v;
using os::Bytes;

int
main()
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 2;
    params.dram.capacityBytes = 256 << 20;
    os::System sys(eq, params);

    services::Nic nic(eq, "nic");
    services::ExtHost peer(eq, "peer", services::ExtHost::Mode::Sink);
    nic.connect(&peer);
    peer.connect(&nic);

    // Everything shares tile 0 (the paper's "shared" configuration).
    services::M3fsParams fsp;
    fsp.storageBytes = 64 << 20;
    services::M3fs fs(sys, 0, fsp);
    services::NetService net(sys, 0, nic);
    services::PagerService pager(sys, 0);
    auto *db_app = sys.createApp(0, "leveldb", 12 * 1024);
    auto fs_client = fs.addClient(db_app);
    auto net_client = net.addClient(db_app);
    auto pager_client = pager.addClient(db_app);
    fs.startService();
    net.startService();
    pager.startService();

    workloads::YcsbConfig cfg;
    cfg.records = 100;
    cfg.operations = 60;
    auto w = workloads::ycsbGenerate(cfg,
                                     workloads::YcsbMix::mixed());

    sys.start(db_app, [&, fs_client, net_client,
                       pager_client](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr heap = 0;
        dtu::Error err = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 8, &heap,
                                         &err);
        workloads::M3vVfs vfs(env, fs_client);
        services::UdpSocket sock(env, net_client);
        co_await sock.create(7000, &err);

        workloads::KvStore db(vfs);
        co_await db.open();
        sim::Tick t0 = eq.now();
        for (const auto &op : w.load)
            co_await db.put(op.key, op.value);
        std::printf("[%8.2f ms] loaded %u records (%llu flushes)\n",
                    sim::ticksToMs(eq.now()), cfg.records,
                    static_cast<unsigned long long>(
                        db.stats().flushes));

        unsigned reads = 0, writes = 0, scans = 0, hits = 0;
        for (const auto &op : w.run) {
            switch (op.kind) {
              case workloads::YcsbOp::Kind::Read: {
                std::string v;
                bool found = false;
                co_await db.get(op.key, &v, &found);
                reads++;
                hits += found;
                break;
              }
              case workloads::YcsbOp::Kind::Insert:
              case workloads::YcsbOp::Kind::Update:
                co_await db.put(op.key, op.value);
                writes++;
                break;
              case workloads::YcsbOp::Kind::Scan: {
                std::vector<std::pair<std::string, std::string>> o;
                co_await db.scan(op.key, op.scanLen, &o);
                scans++;
                break;
              }
            }
            co_await sock.sendTo(0x0a000001, 9,
                                 Bytes(op.key.begin(), op.key.end()),
                                 &err);
        }
        double ms = sim::ticksToMs(eq.now() - t0);
        co_await db.close();

        std::printf("[%8.2f ms] ran %zu ops: %u reads (%u hits), "
                    "%u writes, %u scans\n",
                    sim::ticksToMs(eq.now()), w.run.size(), reads,
                    hits, writes, scans);
        std::printf("             tables: %u, compactions: %llu, "
                    "SST reads: %llu\n",
                    db.tableCount(),
                    static_cast<unsigned long long>(
                        db.stats().compactions),
                    static_cast<unsigned long long>(
                        db.stats().sstReads));
        std::printf("             total %.2f ms simulated\n", ms);
    });

    eq.run();
    std::printf("\nfs handled %llu requests; controller handled "
                "%llu syscalls;\ntile 0 performed %llu context "
                "switches; %llu UDP packets reached the peer.\n",
                static_cast<unsigned long long>(fs.requests()),
                static_cast<unsigned long long>(sys.syscalls()),
                static_cast<unsigned long long>(
                    sys.mux(0).ctxSwitches()),
                static_cast<unsigned long long>(
                    peer.framesReceived()));
    return 0;
}
