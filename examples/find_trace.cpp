/**
 * @file
 * A trace-replay pipeline comparing the same application binary on
 * two substrates: the "find" system-call trace replayed against m3fs
 * on the M3v platform and against tmpfs on the Linux reference model
 * — the portability the paper's musl-based compatibility layer
 * provides (section 8, "Legacy Support").
 *
 *   $ ./examples/find_trace
 */

#include <cstdio>

#include "linuxref/kernel.h"
#include "os/system.h"
#include "services/m3fs.h"
#include "workloads/trace.h"
#include "workloads/vfs_linux.h"
#include "workloads/vfs_m3v.h"

using namespace m3v;

int
main()
{
    workloads::Trace trace = workloads::makeFindTrace(8, 16);

    // --- Run 1: M3v, trace player and m3fs sharing a tile. ---
    double m3v_ms = 0;
    workloads::TraceStats m3v_stats;
    {
        sim::EventQueue eq;
        os::System sys(eq);
        services::M3fs fs(sys, 0);
        auto *player = sys.createApp(0, "find");
        auto client = fs.addClient(player);
        fs.startService();
        sys.start(player, [&, client](os::MuxEnv &env) -> sim::Task {
            workloads::M3vVfs vfs(env, client);
            co_await workloads::traceSetup(vfs, trace);
            sim::Tick t0 = eq.now();
            co_await workloads::tracePlay(vfs, trace, &m3v_stats);
            m3v_ms = sim::ticksToMs(eq.now() - t0);
        });
        eq.run();
        std::printf("M3v   (shared tile): %7.2f ms, %llu fs ops, "
                    "%llu fs requests, %llu switches\n",
                    m3v_ms,
                    static_cast<unsigned long long>(m3v_stats.fsOps),
                    static_cast<unsigned long long>(fs.requests()),
                    static_cast<unsigned long long>(
                        sys.mux(0).ctxSwitches()));
    }

    // --- Run 2: identical application code on the Linux model. ---
    double linux_ms = 0;
    workloads::TraceStats linux_stats;
    {
        sim::EventQueue eq;
        tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
        linuxref::LinuxKernel kernel(eq, "k", core);
        auto *p = kernel.createProcess("find");
        kernel.start(p, sim::invoke([&]() -> sim::Task {
            workloads::LinuxVfs vfs(kernel, *p);
            co_await workloads::traceSetup(vfs, trace);
            sim::Tick t0 = eq.now();
            co_await workloads::tracePlay(vfs, trace, &linux_stats);
            linux_ms = sim::ticksToMs(eq.now() - t0);
            co_await kernel.sysExit(*p);
        }));
        eq.run();
        std::printf("Linux (tmpfs):       %7.2f ms, %llu fs ops, "
                    "%llu syscalls, %llu switches\n",
                    linux_ms,
                    static_cast<unsigned long long>(
                        linux_stats.fsOps),
                    static_cast<unsigned long long>(
                        kernel.syscalls()),
                    static_cast<unsigned long long>(
                        kernel.ctxSwitches()));
    }

    std::printf("\nSame application coroutine, two operating "
                "systems: the Vfs layer is the\nport of the paper's "
                "musl shim. Ratio: %.2fx.\n",
                linux_ms / m3v_ms);
    return 0;
}
