/**
 * @file
 * The IoT voice assistant of paper section 6.5.1, end to end: a
 * trigger-word scanner on an isolated Rocket tile, and a flac-lite
 * compressor + net stack + pager sharing one BOOM tile. Detected
 * audio is delegated by memory capability, compressed losslessly and
 * shipped via UDP to a peer host.
 *
 *   $ ./examples/voice_assistant
 */

#include <cstdio>
#include <cstring>

#include "os/system.h"
#include "services/net.h"
#include "services/pager.h"
#include "workloads/flac.h"

using namespace m3v;
using os::Bytes;
using workloads::Samples;

int
main()
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 4;
    params.tileModels[3] = tile::CoreModel::rocket();
    params.dram.capacityBytes = 128 << 20;
    os::System sys(eq, params);

    services::Nic nic(eq, "nic");
    services::ExtHost cloud(eq, "cloud",
                            services::ExtHost::Mode::Sink);
    nic.connect(&cloud);
    cloud.connect(&nic);

    // Shared BOOM tile 0: compressor + net + pager. Scanner alone on
    // the Rocket tile to keep its trusted computing base minimal.
    services::NetService net(sys, 0, nic);
    services::PagerService pager(sys, 0);
    auto *scanner = sys.createApp(3, "scanner", 6 * 1024);
    auto *comp = sys.createApp(0, "compressor", 10 * 1024);
    auto net_client = net.addClient(comp);
    auto pager_client = pager.addClient(comp);

    auto audio_mg = sys.makeMgate(scanner, 256 * 1024, dtu::kPermRW);
    dtu::EpId comp_mep = sys.allocEp(0);
    os::CapSel comp_cap = sys.grantActCap(scanner, comp);
    auto comp_rep = sys.makeRgate(comp, 64, 4);
    auto scan_sg = sys.makeSgate(scanner, comp, comp_rep.ep, 1, 2);

    net.startService();
    pager.startService();

    constexpr std::size_t kSamples = 16000; // 1 s at 16 kHz
    int chunks_uploaded = 0;

    sys.start(comp, [&, net_client, pager_client,
                     comp_rep](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr heap = 0;
        dtu::Error err = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 16,
                                         &heap, &err);
        services::UdpSocket sock(env, net_client);
        co_await sock.create(7000, &err);

        for (;;) {
            int slot = -1;
            co_await env.recvOn(comp_rep.ep, &slot);
            co_await env.ackMsg(comp_rep.ep, slot);

            // Pull the delegated samples through the memory gate.
            Bytes raw;
            for (std::size_t off = 0; off < kSamples * 2;
                 off += dtu::kPageSize) {
                Bytes page;
                co_await env.readMem(
                    comp_mep, off,
                    std::min<std::size_t>(dtu::kPageSize,
                                          kSamples * 2 - off),
                    &page, &err);
                raw.insert(raw.end(), page.begin(), page.end());
            }
            Samples samples(kSamples);
            std::memcpy(samples.data(), raw.data(),
                        samples.size() * 2);

            auto frames = workloads::flacEncode(samples);
            sim::Cycles cost = 0;
            for (const auto &f : frames)
                cost += workloads::flacEncodeCost(f);
            co_await env.thread().compute(cost);

            std::size_t enc = workloads::flacBytes(frames);
            for (std::size_t off = 0; off < enc; off += 1200) {
                co_await sock.sendTo(
                    0x0a000001, 9,
                    Bytes(std::min<std::size_t>(1200, enc - off),
                          0xaa),
                    &err);
            }
            chunks_uploaded++;
            std::printf("[%8.2f ms] compressor: chunk %d, %zu -> "
                        "%zu bytes (%.0f%%), uploaded\n",
                        sim::ticksToMs(eq.now()), chunks_uploaded,
                        kSamples * 2, enc,
                        100.0 * static_cast<double>(enc) /
                            (kSamples * 2));
        }
    });

    sys.start(scanner, [&, scan_sg,
                        audio_mg](os::MuxEnv &env) -> sim::Task {
        workloads::AudioParams ap;
        for (int chunk = 0; chunk < 6; chunk++) {
            ap.seed = static_cast<std::uint64_t>(chunk) + 1;
            bool trigger = chunk % 2 == 1; // every other second
            Samples audio =
                workloads::generateAudio(kSamples, ap, trigger);
            co_await env.thread().compute(
                workloads::scanCost(audio.size()));
            bool hit =
                workloads::scanForTrigger(audio, ap.sampleRate);
            std::printf("[%8.2f ms] scanner: chunk %d %s\n",
                        sim::ticksToMs(eq.now()), chunk,
                        hit ? "TRIGGER detected" : "silence");
            if (!hit)
                continue;

            // Ship samples to the shared buffer and delegate it.
            Bytes raw(audio.size() * 2);
            std::memcpy(raw.data(), audio.data(), raw.size());
            dtu::Error err = dtu::Error::None;
            for (std::size_t off = 0; off < raw.size();
                 off += dtu::kPageSize) {
                std::size_t n = std::min<std::size_t>(
                    dtu::kPageSize, raw.size() - off);
                co_await env.writeMem(
                    audio_mg.ep, off,
                    Bytes(raw.begin() + static_cast<long>(off),
                          raw.begin() + static_cast<long>(off + n)),
                    &err);
            }
            os::SyscallReq sc;
            os::SyscallResp sr;
            sc.op = os::SyscallReq::Op::ActivateFor;
            sc.arg0 = comp_cap;
            sc.arg1 = comp_mep;
            sc.arg2 = audio_mg.sel;
            co_await env.syscall(sc, &sr);
            co_await env.send(scan_sg.ep, Bytes(1, 1),
                              dtu::kInvalidEp, &err);
        }
    });

    eq.run();
    std::printf("\n%d chunks compressed and uploaded; %llu frames "
                "reached the cloud host.\n",
                chunks_uploaded,
                static_cast<unsigned long long>(
                    cloud.framesReceived()));
    return 0;
}
