/**
 * @file
 * Quickstart: build an M3v platform, start two activities on a
 * shared tile and one on a separate tile, and let them communicate
 * through vDTU channels — the core of what this library provides.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "os/system.h"

using namespace m3v;
using os::Bytes;

int
main()
{
    sim::EventQueue eq;

    // An 8-tile platform: BOOM user cores with vDTUs and TileMux,
    // a Rocket controller tile, two DRAM tiles, a 2x2 star-mesh NoC.
    os::System sys(eq);

    // A server activity and two clients; one client shares the
    // server's tile (tile multiplexing!), one runs remotely.
    auto *server = sys.createApp(0, "echo-server");
    auto *local_client = sys.createApp(0, "local-client");
    auto *remote_client = sys.createApp(3, "remote-client");

    // Communication channels are endpoints configured by the
    // controller: a receive gate on the server, send gates for the
    // clients, reply gates back.
    auto srv_rep = sys.makeRgate(server);
    auto local_sg = sys.makeSgate(local_client, server, srv_rep.ep,
                                  /*label=*/1, /*credits=*/4);
    auto remote_sg = sys.makeSgate(remote_client, server, srv_rep.ep,
                                   2, 4);
    auto local_rep = sys.makeRgate(local_client);
    auto remote_rep = sys.makeRgate(remote_client);

    // The echo server: receive, print, reply. Messages from the
    // co-located client arrive exactly the same way as remote ones —
    // that is M3v's "transparent multiplexing".
    sys.start(server, [&, srv_rep](os::MuxEnv &env) -> sim::Task {
        for (;;) {
            int slot = -1;
            co_await env.recvOn(srv_rep.ep, &slot);
            const dtu::Message &m = env.msgAt(srv_rep.ep, slot);
            std::printf("[%7.2f us] server: got \"%s\" from %s "
                        "client\n",
                        sim::ticksToUs(eq.now()),
                        std::string(m.payload.begin(),
                                    m.payload.end())
                            .c_str(),
                        m.label == 1 ? "local" : "remote");
            dtu::Error err = dtu::Error::None;
            Bytes ack = {'a', 'c', 'k'};
            co_await env.reply(srv_rep.ep, slot, std::move(ack),
                               &err);
        }
    });

    auto client_body = [&](const char *who, os::System::SgateHandle sg,
                           os::System::RgateHandle rep) {
        return [&, who, sg, rep](os::MuxEnv &env) -> sim::Task {
            for (int i = 0; i < 3; i++) {
                std::string msg =
                    std::string(who) + "-ping" + std::to_string(i);
                Bytes resp;
                dtu::Error err = dtu::Error::None;
                sim::Tick t0 = eq.now();
                co_await env.call(sg.ep, rep.ep,
                                  Bytes(msg.begin(), msg.end()),
                                  &resp, &err);
                std::printf("[%7.2f us] %s client: RPC %d took "
                            "%.2f us\n",
                            sim::ticksToUs(eq.now()), who, i,
                            sim::ticksToUs(eq.now() - t0));
            }
        };
    };
    sys.start(local_client, client_body("local", local_sg, local_rep));
    sys.start(remote_client,
              client_body("remote", remote_sg, remote_rep));

    eq.run();

    std::printf("\nDone. Tile 0 context switches: %llu, core "
                "requests: %llu\n",
                static_cast<unsigned long long>(
                    sys.mux(0).ctxSwitches()),
                static_cast<unsigned long long>(
                    sys.mux(0).coreReqIrqs()));
    std::printf("Note how local RPCs cost context switches while "
                "remote ones do not\n(Figure 6 of the paper).\n");
    return 0;
}
