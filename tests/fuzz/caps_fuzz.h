/**
 * @file
 * Capability fuzzing for the sharded controller (DESIGN.md section
 * 4i): random create/delegate/obtain/revoke/destroy op streams on a
 * four-quadrant platform, checked against a sharded reference model
 * of the capability forest, the controller conservation invariants,
 * and a jobs=1-vs-4 digest differential.
 */

#ifndef M3VSIM_TESTS_FUZZ_CAPS_FUZZ_H_
#define M3VSIM_TESTS_FUZZ_CAPS_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

namespace m3v::fuzz {

/** Result of one capability-fuzz scenario (or differential). */
struct CapsOutcome
{
    /** FNV-1a over the final capability forest and shard counters. */
    std::uint64_t digest = 0;
    /** Syscalls that completed with Error::None. */
    std::uint64_t opsOk = 0;
    /** Invariant violations, model mismatches, digest divergences. */
    std::vector<std::string> errors;

    bool failed() const { return !errors.empty(); }
};

/**
 * Run one scenario: four driver activities (one per quadrant) each
 * executing @p ops_per_driver random capability operations against
 * its own quadrant controller, with cross-shard delegation targets.
 * Quiesce, then check the reference model, the controller
 * invariants, and per-op removed-count predictions.
 */
CapsOutcome runCapsScenario(std::uint64_t seed,
                            std::size_t ops_per_driver);

/**
 * Run @p cells scenarios (seeds seed..seed+cells-1) twice — once on
 * one worker thread, once on four — and require per-cell digest
 * equality in addition to each run being clean.
 */
CapsOutcome runCapsDifferential(std::uint64_t seed,
                                std::size_t ops_per_driver,
                                unsigned cells = 4);

} // namespace m3v::fuzz

#endif // M3VSIM_TESTS_FUZZ_CAPS_FUZZ_H_
