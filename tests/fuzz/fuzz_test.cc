/**
 * @file
 * Fuzzer self-tests: bounded smoke runs of the generated-scenario
 * corpus, the laned jobs=1 vs jobs=4 differential, and the
 * deliberately buggy credit-leak fixture (must be caught by the
 * conservation invariant and shrink to a tiny replayable trace).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "fuzz.h"

namespace m3v::fuzz {
namespace {

TEST(Fuzz, SmokeSingleMode)
{
    std::uint64_t sendsOk = 0, recvs = 0;
    for (std::uint64_t seed = 1; seed <= 3; seed++) {
        for (std::uint64_t i = 0; i < 40; i++) {
            Scenario sc =
                makeScenario(seed, i, /*faults=*/i % 2 == 1,
                             /*allow_kills=*/true);
            Outcome out = runScenario(sc, RigMode::Single);
            EXPECT_FALSE(out.failed())
                << "seed " << seed << " index " << i << "\n"
                << ::testing::PrintToString(out.errors);
            sendsOk += out.sendsOk;
            recvs += out.recvs;
            if (out.failed())
                return; // one reproduction is enough
        }
    }
    // The corpus must actually exercise the protocol.
    EXPECT_GT(sendsOk, 50u);
    EXPECT_GT(recvs, 20u);
}

TEST(Fuzz, ScenarioGenerationIsDeterministic)
{
    Scenario a = makeScenario(7, 11, true, true);
    Scenario b = makeScenario(7, 11, true, true);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t i = 0; i < a.ops.size(); i++) {
        EXPECT_EQ(a.ops[i].actIdx, b.ops[i].actIdx);
        EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
        EXPECT_EQ(a.ops[i].arg, b.ops[i].arg);
    }
    // And so is execution: same scenario, same digest.
    EXPECT_EQ(runScenario(a, RigMode::Single).digest,
              runScenario(b, RigMode::Single).digest);
}

TEST(Fuzz, DifferentialLanedJobs1Vs4)
{
    for (std::uint64_t seed = 1; seed <= 2; seed++) {
        for (std::uint64_t i = 0; i < 6; i++) {
            Scenario sc =
                makeScenario(seed, 500 + i, /*faults=*/i % 2 == 1,
                             /*allow_kills=*/true);
            Outcome out = runDifferential(sc);
            EXPECT_FALSE(out.failed())
                << "seed " << seed << " index " << i << "\n"
                << ::testing::PrintToString(out.errors);
            if (out.failed())
                return;
        }
    }
}

TEST(Fuzz, TraceRoundTrip)
{
    Scenario sc = makeScenario(42, 3, true, true);
    sc.kills.push_back({12345, 2});
    std::ostringstream os;
    writeTrace(sc, os);
    std::istringstream is(os.str());
    Scenario rt;
    ASSERT_TRUE(readTrace(is, rt));
    EXPECT_EQ(rt.seed, sc.seed);
    EXPECT_EQ(rt.faults, sc.faults);
    EXPECT_EQ(rt.buggy, sc.buggy);
    ASSERT_EQ(rt.kills.size(), sc.kills.size());
    EXPECT_EQ(rt.kills.back().tick, 12345u);
    ASSERT_EQ(rt.ops.size(), sc.ops.size());
    for (std::size_t i = 0; i < sc.ops.size(); i++) {
        EXPECT_EQ(rt.ops[i].actIdx, sc.ops[i].actIdx);
        EXPECT_EQ(rt.ops[i].kind, sc.ops[i].kind);
        EXPECT_EQ(rt.ops[i].arg, sc.ops[i].arg);
    }
    // The round-tripped scenario replays to the same digest.
    EXPECT_EQ(runScenario(sc, RigMode::Single).digest,
              runScenario(rt, RigMode::Single).digest);
}

TEST(Fuzz, BuggyCreditLeakIsCaughtAndShrinks)
{
    // The --buggy fixture siphons one credit off a send endpoint
    // after the second acknowledged tile-0 send. The conservation
    // invariant must catch it, and the scenario must shrink to a
    // minimal reproduction.
    bool caught = false;
    for (std::uint64_t i = 0; i < 50 && !caught; i++) {
        Scenario sc = makeScenario(999, i, /*faults=*/false,
                                   /*allow_kills=*/false);
        sc.buggy = true;
        Outcome out = runScenario(sc, RigMode::Single);
        if (!out.leaked) {
            // Fixture did not trigger (fewer than two acked tile-0
            // sends): the run must then be clean.
            EXPECT_FALSE(out.failed())
                << ::testing::PrintToString(out.errors);
            continue;
        }
        ASSERT_TRUE(out.failed())
            << "credit leak fired but no invariant tripped (index "
            << i << ")";
        caught = true;

        // The same scenario without the bug is clean: the fixture,
        // not the stack, is at fault.
        Scenario clean = sc;
        clean.buggy = false;
        EXPECT_FALSE(runScenario(clean, RigMode::Single).failed());

        // Shrinks to a handful of ops (two sends suffice).
        Scenario small = shrinkScenario(sc, RigMode::Single);
        EXPECT_LE(small.ops.size(), 20u);
        EXPECT_TRUE(runScenario(small, RigMode::Single).failed());

        // And survives a trace-file round trip as a reproduction.
        std::string path =
            ::testing::TempDir() + "/m3v_fuzz_leak_trace.txt";
        ASSERT_TRUE(writeTraceFile(small, path));
        Scenario replay;
        ASSERT_TRUE(readTraceFile(path, replay));
        EXPECT_TRUE(
            runScenario(replay, RigMode::Single).failed());
        std::remove(path.c_str());
    }
    EXPECT_TRUE(caught)
        << "no generated scenario triggered the leak fixture";
}

} // namespace
} // namespace m3v::fuzz
