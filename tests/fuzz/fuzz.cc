/**
 * @file
 * Fuzzer implementation: platform construction (single-queue and
 * laned), the activity-program interpreter, the reference model, the
 * observable-state digest, ddmin shrinking, and trace file I/O.
 */

#include "fuzz.h"

#include <algorithm>
#include <array>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "core/tilemux.h"
#include "core/vdtu.h"
#include "dtu/memory_tile.h"
#include "sim/fault.h"
#include "sim/invariants.h"
#include "sim/lane.h"
#include "sim/overload.h"
#include "sim/rng.h"

namespace m3v::fuzz {
namespace {

using core::Activity;
using core::TileMux;
using core::VDtu;
using dtu::ActId;
using dtu::Endpoint;
using dtu::EpId;
using dtu::Error;

constexpr unsigned kCoreTiles = 2;
constexpr unsigned kActsPerTile = 3;
constexpr unsigned kNumActs = kCoreTiles * kActsPerTile;
constexpr noc::TileId kMemTile = 2;
constexpr unsigned kNumLanes = 4; ///< tile 0, tile 1, mem, NoC

/** EP layout per tile: recv EP of local activity li, plus one send EP
 *  to the next local activity and one to the remote partner. */
constexpr EpId kRecvEpBase = 8;    ///< 8 + li
constexpr EpId kLocalSepBase = 12; ///< 12 + li
constexpr EpId kRemoteSepBase = 15;

constexpr std::size_t kRecvSlots = 4;
constexpr std::size_t kSlotSize = 64;
constexpr std::uint32_t kCredits = 3;
constexpr dtu::VirtAddr kBufVa = 0x10000;

/** Payload-tag stride per op: a Burst op owns up to this many
 *  consecutive tags (one per sub-send), so tags stay globally
 *  unique and the at-most-once check keeps working. */
constexpr std::uint64_t kTagStride = 4;

/** Sub-sends of a Burst op (1..3), derived from its arg alone. */
unsigned
burstLen(const Op &op)
{
    return 1 + (op.arg >> 8) % 3;
}

/** Sub-sends of a FanIn op (2..4), derived from its arg alone. */
unsigned
fanInLen(const Op &op)
{
    return 2 + op.arg % 3;
}

ActId
actId(unsigned idx)
{
    return static_cast<ActId>(idx + 1);
}

unsigned
tileOf(unsigned idx)
{
    return idx / kActsPerTile;
}

/** Destination activity index of a send op of activity @p idx. */
unsigned
sendDst(unsigned idx, const Op &op)
{
    unsigned t = tileOf(idx);
    unsigned li2 = (idx % kActsPerTile + 1) % kActsPerTile;
    unsigned dt = (op.arg & 1) ? (1 - t) : t;
    return dt * kActsPerTile + li2;
}

/** Destination of a FanIn op: always the remote EP's target. */
unsigned
fanInDst(unsigned idx)
{
    unsigned t = tileOf(idx);
    unsigned li2 = (idx % kActsPerTile + 1) % kActsPerTile;
    return (1 - t) * kActsPerTile + li2;
}

/** Activity program: ops in scenario order, tagged with the op's
 *  global index (the unique payload tag). */
using Prog = std::vector<std::pair<Op, std::uint64_t>>;
using Progs = std::array<Prog, kNumActs>;

Progs
partition(const Scenario &sc)
{
    Progs progs;
    for (std::size_t i = 0; i < sc.ops.size(); i++)
        progs[sc.ops[i].actIdx % kNumActs].push_back(
            {sc.ops[i], i * kTagStride});
    return progs;
}

/** Small, twitchy overload knobs: short scenarios must still reach
 *  the interesting edges (shed, trip, half-open probe, reset). */
sim::AdmissionParams
fuzzAdmission()
{
    sim::AdmissionParams p;
    p.maxQueueDelay = 50 * sim::kTicksPerUs;
    p.highWater = 3;
    return p;
}

sim::CircuitBreakerParams
fuzzBreaker()
{
    sim::CircuitBreakerParams p;
    p.failureThreshold = 2;
    p.openInterval = 50 * sim::kTicksPerUs;
    p.halfOpenSuccesses = 1;
    return p;
}

sim::RetryBudgetParams
fuzzBudget()
{
    sim::RetryBudgetParams p;
    p.initial = 2;
    p.cap = 4;
    p.successesPerToken = 2;
    return p;
}

/** Per-run observations shared by all activity bodies. */
struct RunState
{
    struct ActRec
    {
        /** Payload tags in the order this activity fetched them. */
        std::vector<std::uint64_t> tags;
        /** Result of each *executed* send op, in program order. */
        std::vector<std::uint8_t> sendErrs;
    };
    /** Per-activity overload state machines driven by the burst/
     *  shed/trip ops; their end state folds into the digest. */
    struct Overload
    {
        sim::Admission adm{fuzzAdmission()};
        sim::CircuitBreaker breaker{fuzzBreaker()};
        sim::RetryBudget budget{fuzzBudget()};
    };
    std::array<ActRec, kNumActs> acts;
    std::array<Overload, kNumActs> over;
    std::uint64_t tile0SendsOk = 0;
    bool leaked = false;
};

/** The two-tile platform; pieces may live on different lanes. */
struct Platform
{
    tile::Core core0, core1;
    VDtu vdtu0, vdtu1;
    dtu::MemoryTile mem;
    TileMux mux0, mux1;
    std::array<Activity *, kNumActs> acts{};

    /** The fuzzer never reads DRAM contents (payloads travel with
     *  the messages): a small store avoids paying a fresh 64 MiB
     *  zeroed allocation per scenario. */
    static tile::DramParams
    smallDram()
    {
        tile::DramParams dp;
        dp.capacityBytes = 1 << 20;
        return dp;
    }

    Platform(sim::EventQueue &eq0, sim::EventQueue &eq1,
             sim::EventQueue &eqm, noc::Noc &noc)
        : core0(eq0, "core0", tile::CoreModel::boom(), 0),
          core1(eq1, "core1", tile::CoreModel::boom(), 1),
          vdtu0(eq0, "vdtu0", noc, 0, 80'000'000),
          vdtu1(eq1, "vdtu1", noc, 1, 80'000'000),
          mem(eqm, "mem", noc, kMemTile, smallDram()),
          mux0(eq0, "mux0", core0, vdtu0),
          mux1(eq1, "mux1", core1, vdtu1)
    {
    }

    TileMux &mux(unsigned t) { return t ? mux1 : mux0; }
    VDtu &vdtu(unsigned t) { return t ? vdtu1 : vdtu0; }

    void
    configure()
    {
        for (unsigned t = 0; t < kCoreTiles; t++) {
            VDtu &v = vdtu(t);
            v.configEp(0, Endpoint::makeMem(dtu::kTileMuxAct,
                                            kMemTile, 0, 1 << 20,
                                            dtu::kPermRW));
            for (unsigned li = 0; li < kActsPerTile; li++) {
                unsigned idx = t * kActsPerTile + li;
                ActId id = actId(idx);
                unsigned li2 = (li + 1) % kActsPerTile;
                v.configEp(kRecvEpBase + li,
                           Endpoint::makeRecv(id, kSlotSize,
                                              kRecvSlots));
                v.configEp(
                    kLocalSepBase + li,
                    Endpoint::makeSend(
                        id, t, kRecvEpBase + li2,
                        actId(t * kActsPerTile + li2), kCredits,
                        kSlotSize));
                v.configEp(
                    kRemoteSepBase + li,
                    Endpoint::makeSend(
                        id, 1 - t, kRecvEpBase + li2,
                        actId((1 - t) * kActsPerTile + li2),
                        kCredits, kSlotSize));
            }
        }
        for (unsigned idx = 0; idx < kNumActs; idx++) {
            unsigned t = tileOf(idx);
            ActId id = actId(idx);
            acts[idx] = mux(t).createActivity(
                id, "act" + std::to_string(id));
            mux(t).mapPage(id, kBufVa, 0x1000u * id, dtu::kPermRW);
        }
    }
};

std::uint64_t
parseTag(const std::vector<std::uint8_t> &payload)
{
    std::uint64_t tag = 0;
    for (std::size_t b = 0; b < payload.size() && b < 8; b++)
        tag |= static_cast<std::uint64_t>(payload[b]) << (8 * b);
    return tag;
}

/**
 * The deliberate credit-leak bug fixture (--buggy): siphon one credit
 * off the just-used send endpoint, as a buggy kernel reconfiguring an
 * endpoint in place might. The conservation invariant must trip.
 */
void
leakCredit(VDtu &v, EpId sep)
{
    Endpoint e = v.ep(sep);
    if (e.send.credits > 0) {
        e.send.credits--;
        v.configEp(sep, e);
    }
}

/** One wire send of @p tag on @p sep, with TlbMiss resolution. */
sim::Task
oneSend(Platform &plat, unsigned idx, EpId sep, std::uint64_t tag,
        Error &err_out)
{
    unsigned t = tileOf(idx);
    Activity &act = *plat.acts[idx];
    VDtu &vdtu = plat.vdtu(t);
    TileMux &mux = plat.mux(t);
    tile::Thread &th = act.thread();
    std::vector<std::uint8_t> payload(8);
    for (unsigned b = 0; b < 8; b++)
        payload[b] = (tag >> (8 * b)) & 0xff;
    Error err = Error::Aborted;
    for (int attempt = 0; attempt < 4; attempt++) {
        co_await th.compute(40); // MMIO command setup
        bool done = false;
        vdtu.cmdSend(act.id(), sep, kBufVa, payload, dtu::kInvalidEp,
                     [&](Error e) {
                         err = e;
                         done = true;
                         th.wake();
                     });
        while (!done)
            co_await th.externalWait();
        if (err != Error::TlbMiss)
            break;
        co_await mux.translCall(act, kBufVa, false);
    }
    err_out = err;
}

/** The activity body: interpret @p prog, then exit. */
sim::Task
actBody(Platform &plat, RunState &rs, bool buggy, Prog prog,
        unsigned idx)
{
    unsigned t = tileOf(idx);
    unsigned li = idx % kActsPerTile;
    Activity &act = *plat.acts[idx];
    VDtu &vdtu = plat.vdtu(t);
    TileMux &mux = plat.mux(t);
    tile::Thread &th = act.thread();
    EpId rep = kRecvEpBase + li;
    RunState::ActRec &rec = rs.acts[idx];
    RunState::Overload &ov = rs.over[idx];

    for (const auto &[op, tag] : prog) {
        switch (op.kind) {
        case OpKind::Noop:
            co_await th.compute(100 + op.arg % 4000);
            break;
        case OpKind::Send: {
            EpId sep = (op.arg & 1)
                           ? static_cast<EpId>(kRemoteSepBase + li)
                           : static_cast<EpId>(kLocalSepBase + li);
            Error err = Error::Aborted;
            co_await oneSend(plat, idx, sep, tag, err);
            rec.sendErrs.push_back(static_cast<std::uint8_t>(err));
            if (err == Error::None && t == 0) {
                rs.tile0SendsOk++;
                if (buggy && rs.tile0SendsOk == 2) {
                    leakCredit(vdtu, sep);
                    rs.leaked = true;
                }
            }
            break;
        }
        case OpKind::Burst: {
            // Arrival burst: back-to-back sends gated per attempt by
            // the breaker. A short-circuited attempt never reaches
            // the wire but still records a result so the reference
            // model's send-result stream stays aligned; a failed
            // attempt spends a retry token (a real client would
            // retry) without ever re-sending the tag.
            EpId sep = (op.arg & 1)
                           ? static_cast<EpId>(kRemoteSepBase + li)
                           : static_cast<EpId>(kLocalSepBase + li);
            unsigned k = burstLen(op);
            for (unsigned s = 0; s < k; s++) {
                if (!ov.breaker.allow(vdtu.eventQueue().now())) {
                    rec.sendErrs.push_back(
                        static_cast<std::uint8_t>(Error::Aborted));
                    co_await th.compute(20);
                    continue;
                }
                Error err = Error::Aborted;
                co_await oneSend(plat, idx, sep, tag + s, err);
                rec.sendErrs.push_back(
                    static_cast<std::uint8_t>(err));
                sim::Tick now = vdtu.eventQueue().now();
                if (err == Error::None) {
                    ov.breaker.recordSuccess(now);
                    ov.budget.recordSuccess();
                } else {
                    ov.breaker.recordFailure(now);
                    ov.budget.tryAcquire();
                }
            }
            break;
        }
        case OpKind::Shed: {
            // Non-blocking drain: run every pending request through
            // the admission decision (ring-age + occupancy) exactly
            // as the services do, acking either way — a shed is a
            // decode + typed-reject, modelled by the larger cost.
            for (;;) {
                co_await th.compute(14); // MMIO fetch
                int slot = vdtu.fetch(act.id(), rep);
                if (slot < 0)
                    break;
                const auto &msg = vdtu.slotMsg(rep, slot);
                std::size_t occ =
                    vdtu.ep(rep).recv.unreadCount() + 1;
                bool run = ov.adm.admit(vdtu.eventQueue().now(),
                                        msg.arrival, occ);
                rec.tags.push_back(parseTag(msg.payload));
                co_await th.compute(run ? 14 : 80);
                vdtu.ack(act.id(), rep, slot);
            }
            break;
        }
        case OpKind::Trip: {
            // Drive the breaker edges (trip, short-circuit, half-
            // open probe, reset) with an outcome pattern derived
            // from the op's arg; computes in between advance time so
            // the open interval can elapse across ops.
            unsigned n = 2 + op.arg % 3;
            for (unsigned s = 0; s < n; s++) {
                co_await th.compute(60 + (op.arg >> 4) % 200);
                sim::Tick now = vdtu.eventQueue().now();
                if (!ov.breaker.allow(now))
                    continue;
                if ((op.arg >> s) & 1)
                    ov.breaker.recordFailure(now);
                else
                    ov.breaker.recordSuccess(now);
            }
            if (op.arg & 8)
                ov.budget.tryAcquire();
            else
                ov.budget.recordSuccess();
            break;
        }
        case OpKind::FanIn: {
            // Fan-in burst: 2-4 ungated back-to-back sends on the
            // remote EP. Every tile's remote EPs target the same
            // destination, so concurrent FanIn ops converge on one
            // receiver — same-tick stores coalesce doorbells and, in
            // laned mode, the stores funnel through the MPSC mailbox
            // merge. Tags stay within this op's kTagStride window.
            EpId sep = static_cast<EpId>(kRemoteSepBase + li);
            unsigned k = fanInLen(op);
            for (unsigned s = 0; s < k; s++) {
                Error err = Error::Aborted;
                co_await oneSend(plat, idx, sep, tag + s, err);
                rec.sendErrs.push_back(
                    static_cast<std::uint8_t>(err));
            }
            break;
        }
        case OpKind::Wait: {
            co_await mux.waitForMsg(act, rep);
            for (;;) {
                co_await th.compute(14); // MMIO fetch
                int slot = vdtu.fetch(act.id(), rep);
                if (slot < 0)
                    break;
                rec.tags.push_back(
                    parseTag(vdtu.slotMsg(rep, slot).payload));
                co_await th.compute(14); // MMIO ack
                vdtu.ack(act.id(), rep, slot);
            }
            break;
        }
        case OpKind::Yield:
            co_await mux.yieldCall(act);
            break;
        case OpKind::Exit:
            co_await mux.exitCall(act);
            co_return; // not reached
        }
    }
    co_await mux.exitCall(act);
}

/** FNV-1a 64 accumulator over 64-bit words. */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    add(std::uint64_t v)
    {
        for (unsigned b = 0; b < 8; b++) {
            h ^= (v >> (8 * b)) & 0xff;
            h *= 1099511628211ull;
        }
    }
};

void
appendf(std::vector<std::string> &errors, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::vector<std::string> &errors, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    errors.push_back(buf);
}

/** Reference-model checks over the end state. */
void
modelCheck(Platform &plat, const RunState &rs, const Scenario &sc,
           const Progs &progs, Outcome &out)
{
    // Tags still unread in receive rings, per destination activity.
    std::array<std::set<std::uint64_t>, kNumActs> unread;
    std::map<std::uint64_t, unsigned> observed; // tag -> count
    for (unsigned idx = 0; idx < kNumActs; idx++) {
        unsigned t = tileOf(idx);
        EpId rep = kRecvEpBase + idx % kActsPerTile;
        const dtu::RecvEp &re = plat.vdtu(t).ep(rep).recv;
        for (const dtu::RecvSlot &slot : re.slots) {
            if (slot.occupied && slot.unread) {
                std::uint64_t tag = parseTag(slot.msg.payload);
                unread[idx].insert(tag);
                observed[tag]++;
            }
        }
        for (std::uint64_t tag : rs.acts[idx].tags) {
            observed[tag]++;
            out.recvs++;
        }
    }

    // At-most-once: duplicate suppression must hold even under
    // faults — no tag may be observed (fetched or pending) twice.
    for (const auto &[tag, count] : observed) {
        if (count > 1)
            appendf(out.errors,
                    "model: tag %llu observed %u times "
                    "(duplicate delivery)",
                    static_cast<unsigned long long>(tag), count);
    }

    // Exactly-once (kill-free runs): each send completed with
    // Error::None was wire-acknowledged, so it must be fetched or
    // still pending — unless the receiver died (reset drops).
    std::array<std::set<std::uint64_t>, kNumActs> fetched;
    for (unsigned idx = 0; idx < kNumActs; idx++)
        fetched[idx] = {rs.acts[idx].tags.begin(),
                        rs.acts[idx].tags.end()};
    for (unsigned idx = 0; idx < kNumActs; idx++) {
        std::size_t si = 0;
        bool cut = false;
        for (const auto &[op, tag] : progs[idx]) {
            // Every op kind that appends to sendErrs must be
            // walked here, or the sequential err/tag pairing
            // drifts and later sends get checked against the
            // wrong outcome.
            if (op.kind != OpKind::Send &&
                op.kind != OpKind::Burst &&
                op.kind != OpKind::FanIn)
                continue;
            unsigned subs = op.kind == OpKind::Burst ? burstLen(op)
                            : op.kind == OpKind::FanIn
                                ? fanInLen(op)
                                : 1;
            for (unsigned s = 0; s < subs; s++) {
                if (si >= rs.acts[idx].sendErrs.size()) {
                    cut = true; // blocked or exited mid-program
                    break;
                }
                Error err = static_cast<Error>(
                    rs.acts[idx].sendErrs[si++]);
                if (err != Error::None)
                    continue;
                out.sendsOk++;
                if (!sc.kills.empty())
                    continue;
                unsigned dst = op.kind == OpKind::FanIn
                                   ? fanInDst(idx)
                                   : sendDst(idx, op);
                if (plat.acts[dst]->state() ==
                    Activity::State::Dead)
                    continue;
                if (!fetched[dst].count(tag + s) &&
                    !unread[dst].count(tag + s))
                    appendf(
                        out.errors,
                        "model: send tag %llu (act%u -> act%u) "
                        "acked but never delivered",
                        static_cast<unsigned long long>(tag + s),
                        idx, dst);
            }
            if (cut)
                break;
        }
    }
}

/** Digest of every observable the differential runner compares. */
std::uint64_t
computeDigest(Platform &plat, const RunState &rs,
              const noc::Noc &noc)
{
    Fnv f;
    for (unsigned idx = 0; idx < kNumActs; idx++) {
        const RunState::ActRec &rec = rs.acts[idx];
        f.add(0xA0 + idx);
        f.add(rec.tags.size());
        for (std::uint64_t tag : rec.tags)
            f.add(tag);
        f.add(rec.sendErrs.size());
        for (std::uint8_t e : rec.sendErrs)
            f.add(e);
        f.add(static_cast<std::uint64_t>(
            plat.acts[idx]->state()));
    }
    for (unsigned t = 0; t < kCoreTiles; t++) {
        VDtu &v = plat.vdtu(t);
        f.add(0xD0 + t);
        f.add(v.coreReqs());
        f.add(v.tlbMisses());
        f.add(v.tlbHits());
        f.add(v.foreignEpDenials());
        f.add(v.msgsSent());
        f.add(v.msgsReceived());
        f.add(v.retransmits());
        f.add(v.timeouts());
        f.add(v.duplicatesDropped());
        f.add(v.corruptDropped());
        f.add(v.straysDropped());
        f.add(v.creditsReclaimed());
        for (unsigned li = 0; li < kActsPerTile; li++) {
            f.add(v.ep(kLocalSepBase + li).send.credits);
            f.add(v.ep(kRemoteSepBase + li).send.credits);
            f.add(v.ep(kRecvEpBase + li).recv.unreadCount());
        }
        TileMux &m = plat.mux(t);
        f.add(m.ctxSwitches());
        f.add(m.coreReqIrqs());
        f.add(m.timerIrqs());
        f.add(m.tmCalls());
        f.add(m.crashes());
    }
    for (unsigned idx = 0; idx < kNumActs; idx++) {
        const RunState::Overload &ov = rs.over[idx];
        f.add(0xE0 + idx);
        f.h = ov.adm.digest(f.h);
        f.h = ov.breaker.digest(f.h);
        f.h = ov.budget.digest(f.h);
    }
    f.add(noc.delivered());
    f.add(noc.deliveredBytes());
    return f.h;
}

void
collectViolations(const sim::Invariants &inv, const char *where,
                  Outcome &out)
{
    for (const std::string &v : inv.violations())
        out.errors.push_back(std::string(where) + ": " + v);
    if (inv.violationCount() > inv.violations().size())
        appendf(out.errors, "%s: %llu further violations unrecorded",
                where,
                static_cast<unsigned long long>(
                    inv.violationCount() - inv.violations().size()));
}

void
startBodies(Platform &plat, RunState &rs, const Scenario &sc,
            Progs &progs)
{
    for (unsigned idx = 0; idx < kNumActs; idx++)
        plat.mux(tileOf(idx)).startActivity(
            plat.acts[idx],
            actBody(plat, rs, sc.buggy, progs[idx], idx));
}

void
scheduleKill(sim::EventQueue &eq, TileMux &mux, const KillEvent &k)
{
    ActId id = actId(k.actIdx % kNumActs);
    eq.schedule(k.tick, [&mux, id]() { mux.crashActivity(id); });
}

std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t index)
{
    // splitmix64 over (seed, index) for independent streams.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

const char *
opKindName(OpKind k)
{
    switch (k) {
    case OpKind::Noop: return "noop";
    case OpKind::Send: return "send";
    case OpKind::Wait: return "wait";
    case OpKind::Yield: return "yield";
    case OpKind::Exit: return "exit";
    case OpKind::Burst: return "burst";
    case OpKind::Shed: return "shed";
    case OpKind::Trip: return "trip";
    case OpKind::FanIn: return "fanin";
    }
    return "?";
}

Scenario
makeScenario(std::uint64_t seed, std::uint64_t index, bool faults,
             bool allow_kills)
{
    Scenario sc;
    sc.seed = mixSeed(seed, index);
    sc.faults = faults;
    sim::Rng rng(sc.seed);
    unsigned n = 8 + static_cast<unsigned>(rng.nextBounded(17));
    sc.ops.reserve(n);
    for (unsigned i = 0; i < n; i++) {
        Op op;
        op.actIdx =
            static_cast<std::uint8_t>(rng.nextBounded(kNumActs));
        std::uint64_t roll = rng.nextBounded(100);
        if (roll < 15)
            op.kind = OpKind::Noop;
        else if (roll < 44)
            op.kind = OpKind::Send;
        else if (roll < 62)
            op.kind = OpKind::Wait;
        else if (roll < 70)
            op.kind = OpKind::Yield;
        else if (roll < 75)
            op.kind = OpKind::Exit;
        else if (roll < 84)
            op.kind = OpKind::Burst;
        else if (roll < 92)
            op.kind = OpKind::Shed;
        else if (roll < 96)
            op.kind = OpKind::Trip;
        else
            op.kind = OpKind::FanIn;
        op.arg = static_cast<std::uint32_t>(rng.next());
        sc.ops.push_back(op);
    }
    if (allow_kills && rng.nextBounded(5) == 0) {
        unsigned kills = 1 + static_cast<unsigned>(rng.nextBounded(2));
        for (unsigned k = 0; k < kills; k++) {
            KillEvent ke;
            ke.tick = sim::kTicksPerMs / 50 +
                      rng.nextBounded(2 * sim::kTicksPerMs);
            ke.actIdx = static_cast<std::uint8_t>(
                rng.nextBounded(kNumActs));
            sc.kills.push_back(ke);
        }
    }
    return sc;
}

Outcome
runScenario(const Scenario &sc, RigMode mode, unsigned jobs,
            std::uint64_t inv_stride)
{
    Outcome out;
    RunState rs;
    Progs progs = partition(sc);

    // The plan is stateful (RNG, counters): fresh per run, same seed
    // per scenario so every mode/jobs variant sees identical faults.
    sim::FaultPlan plan(mixSeed(sc.seed, 0xfa17));
    if (sc.faults) {
        plan.addDrop("noc.", 0.05);
        plan.addCorrupt("noc.", 0.05);
    }
    noc::NocParams np;
    if (sc.faults)
        np.faults = &plan;

    if (mode == RigMode::Single) {
        sim::EventQueue eq;
        noc::Noc noc(eq, np);
        Platform plat(eq, eq, eq, noc);
        noc.finalize();
        plat.configure();

        sim::Invariants inv;
        dtu::registerDtuInvariants(inv, {&plat.vdtu0, &plat.vdtu1});
        plat.vdtu0.registerInvariants(inv);
        plat.vdtu1.registerInvariants(inv);
        plat.mux0.registerInvariants(inv);
        plat.mux1.registerInvariants(inv);
        noc.registerInvariants(inv);
        inv.attach(eq, inv_stride);

        startBodies(plat, rs, sc, progs);
        for (const KillEvent &k : sc.kills)
            scheduleKill(eq, plat.mux(tileOf(k.actIdx % kNumActs)),
                         k);
        eq.run();
        inv.runAll(true);
        collectViolations(inv, "single", out);
        modelCheck(plat, rs, sc, progs, out);
        out.digest = computeDigest(plat, rs, noc);
    } else {
        sim::Tick lookahead = noc::Noc::minLinkLatency(np);
        sim::LaneScheduler sched(kNumLanes, jobs, lookahead);
        unsigned noc_lane = kNumLanes - 1;
        noc::Noc noc(sched.lane(noc_lane), np);
        std::vector<unsigned> lane_of_tile = {0, 1, 2};
        noc.setLanePlan(sched, lane_of_tile, noc_lane);
        Platform plat(sched.lane(0), sched.lane(1), sched.lane(2),
                      noc);
        noc.finalize();
        plat.configure();

        // Per-lane registries hold only that lane's components
        // (checks run on the lane's worker thread); cross-lane laws
        // run single-threaded after the scheduler drains.
        std::array<sim::Invariants, kCoreTiles> lane_inv;
        for (unsigned t = 0; t < kCoreTiles; t++) {
            plat.vdtu(t).registerInvariants(lane_inv[t]);
            plat.mux(t).registerInvariants(lane_inv[t]);
            lane_inv[t].attach(sched.lane(t), inv_stride);
        }

        startBodies(plat, rs, sc, progs);
        for (const KillEvent &k : sc.kills)
            scheduleKill(sched.lane(tileOf(k.actIdx % kNumActs)),
                         plat.mux(tileOf(k.actIdx % kNumActs)), k);
        sched.run();
        for (unsigned t = 0; t < kCoreTiles; t++) {
            lane_inv[t].runAll(true);
            collectViolations(lane_inv[t],
                              t ? "lane1" : "lane0", out);
        }
        sim::Invariants cross;
        dtu::registerDtuInvariants(cross,
                                   {&plat.vdtu0, &plat.vdtu1});
        noc.registerInvariants(cross);
        cross.runAll(true);
        collectViolations(cross, "cross", out);
        modelCheck(plat, rs, sc, progs, out);
        out.digest = computeDigest(plat, rs, noc);
    }
    out.leaked = rs.leaked;
    return out;
}

Outcome
runDifferential(const Scenario &sc, std::uint64_t inv_stride)
{
    Outcome a = runScenario(sc, RigMode::Laned, 1, inv_stride);
    Outcome b = runScenario(sc, RigMode::Laned, 4, inv_stride);
    Outcome out = a;
    for (const std::string &e : b.errors)
        out.errors.push_back("jobs=4: " + e);
    if (a.digest != b.digest)
        appendf(out.errors,
                "differential: digest mismatch jobs=1 %016llx vs "
                "jobs=4 %016llx",
                static_cast<unsigned long long>(a.digest),
                static_cast<unsigned long long>(b.digest));
    return out;
}

Scenario
shrinkScenario(const Scenario &sc, RigMode mode, unsigned jobs)
{
    auto fails = [&](const Scenario &s) {
        return runScenario(s, mode, jobs).failed();
    };
    if (!fails(sc))
        return sc;
    Scenario cur = sc;
    if (!cur.kills.empty()) {
        Scenario t = cur;
        t.kills.clear();
        if (fails(t))
            cur = std::move(t);
    }
    // ddmin over ops: remove chunks of shrinking size while the
    // scenario keeps failing.
    for (std::size_t chunk = std::max<std::size_t>(
             1, cur.ops.size() / 2);
         ;) {
        bool removed = false;
        std::size_t start = 0;
        while (start < cur.ops.size()) {
            Scenario t = cur;
            std::size_t end =
                std::min(start + chunk, t.ops.size());
            t.ops.erase(t.ops.begin() + start, t.ops.begin() + end);
            if (fails(t)) {
                cur = std::move(t);
                removed = true; // same start now holds new ops
            } else {
                start = end;
            }
        }
        if (chunk == 1 && !removed)
            break;
        if (chunk > 1)
            chunk /= 2;
    }
    return cur;
}

void
writeTrace(const Scenario &sc, std::ostream &os)
{
    os << "# m3v fuzz trace v1\n";
    os << "seed " << sc.seed << "\n";
    os << "faults " << (sc.faults ? 1 : 0) << "\n";
    os << "buggy " << (sc.buggy ? 1 : 0) << "\n";
    for (const KillEvent &k : sc.kills)
        os << "kill " << k.tick << " "
           << static_cast<unsigned>(k.actIdx) << "\n";
    for (const Op &op : sc.ops)
        os << "op " << static_cast<unsigned>(op.actIdx) << " "
           << opKindName(op.kind) << " " << op.arg << "\n";
}

bool
readTrace(std::istream &is, Scenario &sc)
{
    sc = Scenario{};
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "seed") {
            ls >> sc.seed;
        } else if (word == "faults") {
            int v = 0;
            ls >> v;
            sc.faults = v != 0;
        } else if (word == "buggy") {
            int v = 0;
            ls >> v;
            sc.buggy = v != 0;
        } else if (word == "kill") {
            KillEvent k;
            unsigned idx = 0;
            ls >> k.tick >> idx;
            k.actIdx = static_cast<std::uint8_t>(idx);
            sc.kills.push_back(k);
        } else if (word == "op") {
            Op op;
            unsigned idx = 0;
            std::string kind;
            ls >> idx >> kind >> op.arg;
            op.actIdx = static_cast<std::uint8_t>(idx);
            if (kind == "noop")
                op.kind = OpKind::Noop;
            else if (kind == "send")
                op.kind = OpKind::Send;
            else if (kind == "wait")
                op.kind = OpKind::Wait;
            else if (kind == "yield")
                op.kind = OpKind::Yield;
            else if (kind == "exit")
                op.kind = OpKind::Exit;
            else if (kind == "burst")
                op.kind = OpKind::Burst;
            else if (kind == "shed")
                op.kind = OpKind::Shed;
            else if (kind == "trip")
                op.kind = OpKind::Trip;
            else if (kind == "fanin")
                op.kind = OpKind::FanIn;
            else
                return false;
            if (ls.fail())
                return false;
            sc.ops.push_back(op);
        } else {
            return false;
        }
    }
    return !sc.ops.empty();
}

bool
writeTraceFile(const Scenario &sc, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeTrace(sc, os);
    return static_cast<bool>(os);
}

bool
readTraceFile(const std::string &path, Scenario &sc)
{
    std::ifstream is(path);
    if (!is)
        return false;
    return readTrace(is, sc);
}

} // namespace m3v::fuzz
