/**
 * @file
 * Capability-fuzz smoke for CI: a few sharded-model scenarios plus
 * one jobs=1-vs-4 digest differential. The standalone fuzz_driver
 * (--caps=N) runs longer campaigns.
 */

#include <gtest/gtest.h>

#include "caps_fuzz.h"

namespace m3v::fuzz {
namespace {

std::string
joined(const CapsOutcome &out)
{
    std::string s;
    for (const std::string &e : out.errors)
        s += e + "\n";
    return s;
}

TEST(CapsFuzzTest, ScenariosMatchShardedModel)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        CapsOutcome out = runCapsScenario(seed, 60);
        EXPECT_FALSE(out.failed()) << "seed " << seed << ":\n"
                                   << joined(out);
        EXPECT_GT(out.opsOk, 100u) << "seed " << seed;
    }
}

TEST(CapsFuzzTest, JobsDifferentialDigestParity)
{
    CapsOutcome out = runCapsDifferential(7, 40, 4);
    EXPECT_FALSE(out.failed()) << joined(out);
    EXPECT_GT(out.opsOk, 0u);
}

} // namespace
} // namespace m3v::fuzz
