#include "caps_fuzz.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "os/system.h"
#include "sim/lane.h"

namespace m3v::fuzz {
namespace {

using namespace m3v::os;
using dtu::Error;

std::uint64_t
splitmix(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
appendf(std::vector<std::string> &errs, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    errs.push_back(buf);
}

/** Global identity of a capability: (shard, table, selector). */
struct Key
{
    unsigned shard = 0;
    dtu::ActId act = dtu::kInvalidAct;
    CapSel sel = kInvalidSel;

    bool
    operator<(const Key &o) const
    {
        if (shard != o.shard)
            return shard < o.shard;
        if (act != o.act)
            return act < o.act;
        return sel < o.sel;
    }
    bool
    operator==(const Key &o) const
    {
        return shard == o.shard && act == o.act && sel == o.sel;
    }
};

/**
 * The sharded reference model: the capability forest as it should
 * exist across all four shard partitions, maintained op-by-op from
 * the syscall results. Edges may cross shards (delegation, obtain);
 * the model is shard-agnostic about edges but keyed by the shard
 * that owns each node, exactly like the partitioned CapMgrs.
 */
struct Model
{
    struct Node
    {
        bool hasParent = false;
        Key parent;
        std::vector<Key> children;
    };

    std::map<Key, Node> nodes;

    Node &
    ensure(const Key &k)
    {
        return nodes[k];
    }

    void
    insertChild(const Key &parent, const Key &child)
    {
        ensure(parent).children.push_back(child);
        Node &c = ensure(child);
        c.hasParent = true;
        c.parent = parent;
    }

    /**
     * Remove the subtree rooted at @p root (the root itself only
     * when !keep_root), returning the removed keys. Mirrors
     * CapMgr::planRevoke + executeRevoke plus the cross-shard
     * cascade of Controller::revokeTree.
     */
    std::vector<Key>
    removeSubtree(const Key &root, bool keep_root)
    {
        std::vector<Key> removed;
        auto it = nodes.find(root);
        if (it == nodes.end())
            return removed;
        std::vector<Key> stack;
        if (keep_root) {
            stack = it->second.children;
        } else {
            stack.push_back(root);
        }
        while (!stack.empty()) {
            Key k = stack.back();
            stack.pop_back();
            auto n = nodes.find(k);
            if (n == nodes.end())
                continue;
            for (const Key &c : n->second.children)
                stack.push_back(c);
            removed.push_back(k);
            nodes.erase(n);
        }
        if (keep_root) {
            it->second.children.clear();
        } else if (!removed.empty()) {
            // Detach the dead root from its surviving parent, if
            // any (interior removals stay within the subtree).
            std::set<Key> gone(removed.begin(), removed.end());
            for (auto &[pk, pn] : nodes) {
                auto &ch = pn.children;
                ch.erase(std::remove_if(ch.begin(), ch.end(),
                                        [&](const Key &c) {
                                            return gone.count(c);
                                        }),
                         ch.end());
            }
        }
        return removed;
    }
};

/** A capability the driver holds in its own table. */
struct Owned
{
    CapSel sel = kInvalidSel;
    /** Boot-created mgate root: revoked with keep_root only. */
    bool root = false;
};

/** A controller-side activity the driver created and populates. */
struct Storm
{
    CapSel actSel = kInvalidSel;
    dtu::ActId id = dtu::kInvalidAct;
    noc::TileId tile = 0;
    unsigned shard = 0;
    std::vector<CapSel> sels; ///< delegated caps in its table
};

struct Driver
{
    unsigned idx = 0;
    unsigned shard = 0;
    dtu::ActId id = dtu::kInvalidAct;
    std::uint64_t rng = 0;
    std::vector<Owned> own;
    std::vector<Storm> storms;
};

/** Drop every owned/storm selector that the model just removed. */
void
pruneRemoved(Driver &d, const std::vector<Key> &removed)
{
    std::set<Key> gone(removed.begin(), removed.end());
    d.own.erase(std::remove_if(d.own.begin(), d.own.end(),
                               [&](const Owned &o) {
                                   return gone.count(Key{
                                       d.shard, d.id, o.sel});
                               }),
                d.own.end());
    for (Storm &s : d.storms)
        s.sels.erase(std::remove_if(s.sels.begin(), s.sels.end(),
                                    [&](CapSel sel) {
                                        return gone.count(Key{
                                            s.shard, s.id, sel});
                                    }),
                     s.sels.end());
}

sim::Task
driverBody(MuxEnv &env, System &sys, Driver &d, Model &model,
           std::size_t nops, CapsOutcome &out)
{
    for (std::size_t i = 0; i < nops; i++) {
        std::uint64_t r = splitmix(d.rng) % 100;
        SyscallReq req;
        SyscallResp resp;

        if (r < 18 && d.storms.size() < 8) {
            auto tile = static_cast<noc::TileId>(
                splitmix(d.rng) % sys.params().userTiles);
            req.op = SyscallReq::Op::CreateAct;
            req.arg0 = tile;
            co_await env.syscall(req, &resp);
            if (resp.err != Error::None) {
                appendf(out.errors, "d%u op%zu: CreateAct -> %s",
                        d.idx, i, dtu::errorName(resp.err));
                continue;
            }
            out.opsOk++;
            Storm s;
            s.actSel = static_cast<CapSel>(resp.val >> 32);
            s.id = static_cast<dtu::ActId>(resp.val & 0xffff);
            s.tile = tile;
            s.shard = sys.shardMap().shardOfTile(tile);
            d.storms.push_back(s);
            model.ensure(Key{d.shard, d.id, s.actSel});
        } else if (r < 55 && !d.storms.empty() && !d.own.empty()) {
            Storm &s = d.storms[splitmix(d.rng) % d.storms.size()];
            Owned &o = d.own[splitmix(d.rng) % d.own.size()];
            req.op = SyscallReq::Op::Delegate;
            req.arg0 = s.actSel;
            req.arg1 = o.sel;
            co_await env.syscall(req, &resp);
            if (resp.err != Error::None) {
                appendf(out.errors, "d%u op%zu: Delegate -> %s",
                        d.idx, i, dtu::errorName(resp.err));
                continue;
            }
            out.opsOk++;
            auto child = static_cast<CapSel>(resp.val);
            if (selShard(child) != s.shard)
                appendf(out.errors,
                        "d%u op%zu: delegated sel %u minted by "
                        "shard %u, expected %u",
                        d.idx, i, child, selShard(child), s.shard);
            s.sels.push_back(child);
            model.insertChild(Key{d.shard, d.id, o.sel},
                              Key{s.shard, s.id, child});
        } else if (r < 70) {
            std::vector<Storm *> eligible;
            for (Storm &c : d.storms)
                if (!c.sels.empty())
                    eligible.push_back(&c);
            if (eligible.empty())
                continue;
            Storm *s = eligible[splitmix(d.rng) % eligible.size()];
            CapSel src = s->sels[splitmix(d.rng) % s->sels.size()];
            req.op = SyscallReq::Op::Obtain;
            req.arg0 = s->actSel;
            req.arg1 = src;
            co_await env.syscall(req, &resp);
            if (resp.err != Error::None) {
                appendf(out.errors, "d%u op%zu: Obtain -> %s",
                        d.idx, i, dtu::errorName(resp.err));
                continue;
            }
            out.opsOk++;
            auto dst = static_cast<CapSel>(resp.val);
            d.own.push_back(Owned{dst, false});
            model.insertChild(Key{s->shard, s->id, src},
                              Key{d.shard, d.id, dst});
        } else if (r < 88 && !d.own.empty()) {
            std::size_t pick = splitmix(d.rng) % d.own.size();
            Owned o = d.own[pick];
            req.op = SyscallReq::Op::Revoke;
            req.arg0 = o.sel;
            req.arg1 = o.root ? 1 : 0;
            co_await env.syscall(req, &resp);
            if (resp.err != Error::None) {
                appendf(out.errors, "d%u op%zu: Revoke -> %s",
                        d.idx, i, dtu::errorName(resp.err));
                continue;
            }
            out.opsOk++;
            std::vector<Key> removed = model.removeSubtree(
                Key{d.shard, d.id, o.sel}, o.root);
            if (resp.val != removed.size())
                appendf(out.errors,
                        "d%u op%zu: Revoke removed %llu caps, "
                        "model predicts %zu",
                        d.idx, i,
                        static_cast<unsigned long long>(resp.val),
                        removed.size());
            pruneRemoved(d, removed);
        } else if (!d.storms.empty()) {
            std::size_t pick = splitmix(d.rng) % d.storms.size();
            Storm s = d.storms[pick];
            req.op = SyscallReq::Op::DestroyAct;
            req.arg0 = s.actSel;
            co_await env.syscall(req, &resp);
            if (resp.err != Error::None) {
                appendf(out.errors, "d%u op%zu: DestroyAct -> %s",
                        d.idx, i, dtu::errorName(resp.err));
                continue;
            }
            out.opsOk++;
            std::vector<Key> removed = model.removeSubtree(
                Key{d.shard, d.id, s.actSel}, false);
            if (resp.val != removed.size())
                appendf(out.errors,
                        "d%u op%zu: DestroyAct removed %llu caps, "
                        "model predicts %zu",
                        d.idx, i,
                        static_cast<unsigned long long>(resp.val),
                        removed.size());
            // Dropping the table revokes every remaining cap in it,
            // cascading to their descendants on other shards.
            std::vector<Key> table;
            for (auto &[k, n] : model.nodes)
                if (k.act == s.id)
                    table.push_back(k);
            for (const Key &k : table) {
                std::vector<Key> more =
                    model.removeSubtree(k, false);
                removed.insert(removed.end(), more.begin(),
                               more.end());
            }
            pruneRemoved(d, removed);
            d.storms.erase(d.storms.begin() + pick);
        }
        // else: no eligible target this round; the op is a no-op.
    }
}

void
collectKeys(System &sys, std::set<Key> &out)
{
    for (unsigned s = 0; s < sys.ctrlShards(); s++) {
        sys.capsOf(s).forEachTable([&](CapTable &t) {
            t.forEachCap([&](Capability &c) {
                out.insert(Key{s, t.owner(), c.sel()});
            });
        });
    }
}

std::uint64_t
fnv(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

CapsOutcome
runCapsScenario(std::uint64_t seed, std::size_t ops_per_driver)
{
    sim::EventQueue eq;
    SystemParams params;
    params.ctrlShards = 4;
    System sys(eq, params);
    sim::Invariants inv;
    registerControllerInvariants(inv, sys);

    CapsOutcome out;
    Model model;
    constexpr unsigned kDrivers = 4;
    std::vector<Driver> drivers(kDrivers);
    std::vector<System::App *> apps(kDrivers);
    for (unsigned i = 0; i < kDrivers; i++) {
        Driver &d = drivers[i];
        d.idx = i;
        // One driver per quadrant: tiles 0, 2, 4, 6.
        unsigned tile = i * 2;
        d.shard = sys.shardMap().shardOfTile(tile);
        apps[i] = sys.createApp(tile, "drv" + std::to_string(i));
        d.id = apps[i]->act->id();
        d.rng = seed * 0x9e3779b97f4a7c15ull + i + 1;
        for (int r = 0; r < 3; r++) {
            auto h = sys.makeMgate(apps[i], 64 << 10, dtu::kPermRW);
            d.own.push_back(Owned{h.sel, true});
        }
    }

    // Everything boot-time (syscall gates, mgate roots) is outside
    // the model; snapshot it so the final sweep can tell fuzz-created
    // caps from harness plumbing.
    std::set<Key> baseline;
    collectKeys(sys, baseline);

    for (unsigned i = 0; i < kDrivers; i++) {
        Driver &d = drivers[i];
        sys.start(apps[i], [&, ops_per_driver](MuxEnv &env)
                      -> sim::Task {
            return driverBody(env, sys, d, model, ops_per_driver,
                              out);
        });
    }
    eq.run();

    inv.runAll(true);
    for (const std::string &v : inv.violations())
        out.errors.push_back("invariant: " + v);

    // Final sweep: the system's capability forest must be exactly
    // baseline + model, in both directions.
    std::set<Key> finals;
    collectKeys(sys, finals);
    for (const Key &k : finals) {
        if (!baseline.count(k) && !model.nodes.count(k))
            appendf(out.errors,
                    "leaked cap: shard %u act %u sel %u exists but "
                    "the model revoked it",
                    k.shard, k.act, k.sel);
    }
    for (const auto &[k, n] : model.nodes) {
        if (!finals.count(k))
            appendf(out.errors,
                    "lost cap: shard %u act %u sel %u revoked but "
                    "the model still holds it",
                    k.shard, k.act, k.sel);
    }

    out.digest = 0xcbf29ce484222325ull;
    for (const Key &k : finals) {
        out.digest = fnv(out.digest, k.shard);
        out.digest = fnv(out.digest, k.act);
        out.digest = fnv(out.digest, k.sel);
    }
    for (unsigned s = 0; s < sys.ctrlShards(); s++) {
        const Controller &c = sys.controllerOf(s);
        out.digest = fnv(out.digest, c.xshardSent());
        out.digest = fnv(out.digest, c.xshardHandled());
        out.digest = fnv(out.digest, c.activitiesReaped());
    }
    out.digest = fnv(out.digest, out.opsOk);
    return out;
}

CapsOutcome
runCapsDifferential(std::uint64_t seed, std::size_t ops_per_driver,
                    unsigned cells)
{
    CapsOutcome merged;
    for (unsigned jobs : {1u, 4u}) {
        std::vector<CapsOutcome> res(cells);
        std::vector<sim::UniqueFunction<void()>> work;
        for (unsigned c = 0; c < cells; c++) {
            work.emplace_back([&res, c, seed, ops_per_driver]() {
                res[c] =
                    runCapsScenario(seed + c, ops_per_driver);
            });
        }
        sim::runCells(jobs, std::move(work));
        for (unsigned c = 0; c < cells; c++) {
            for (const std::string &e : res[c].errors)
                appendf(merged.errors, "jobs=%u cell=%u: %s", jobs,
                        c, e.c_str());
            merged.opsOk += res[c].opsOk;
        }
        if (jobs == 1) {
            merged.digest = 0xcbf29ce484222325ull;
            for (const CapsOutcome &r : res)
                merged.digest = fnv(merged.digest, r.digest);
        } else {
            std::uint64_t d4 = 0xcbf29ce484222325ull;
            for (const CapsOutcome &r : res)
                d4 = fnv(d4, r.digest);
            if (d4 != merged.digest)
                appendf(merged.errors,
                        "digest divergence: jobs=1 %016llx vs "
                        "jobs=4 %016llx",
                        static_cast<unsigned long long>(
                            merged.digest),
                        static_cast<unsigned long long>(d4));
        }
    }
    return merged;
}

} // namespace m3v::fuzz
