/**
 * @file
 * Standalone fuzz driver (CI smoke stages and interactive use).
 *
 *   fuzz_driver [--seeds=N] [--seqs=M] [--diff=D] [--faults=off|on|both]
 *               [--buggy] [--inv-stride=S] [--seed-base=B]
 *               [--caps=N] [--caps-ops=M]
 *               [--replay=FILE] [--shrink-out=FILE] [--jobs=J] [-v]
 *
 * Default mode: for each of N seed streams, run M generated scenarios
 * on the single-queue rig with all invariants attached, plus D
 * differential scenarios (laned jobs=1 vs jobs=4). Any invariant
 * violation, reference-model mismatch, or digest divergence fails the
 * run; the offending scenario is shrunk and written as a replayable
 * trace (--shrink-out, default stderr). Exit code 0 = clean.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "caps_fuzz.h"
#include "fuzz.h"

namespace {

struct Options
{
    std::uint64_t seeds = 5;
    std::uint64_t seqs = 2100;
    std::uint64_t diff = 0;
    std::uint64_t caps = 0;
    std::uint64_t capsOps = 60;
    std::uint64_t seedBase = 1;
    std::uint64_t invStride = 1;
    unsigned jobs = 4;
    int faults = 2; ///< 0 off, 1 on, 2 both (alternate)
    bool buggy = false;
    bool verbose = false;
    std::string replay;
    std::string shrinkOut;
};

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end && *end == '\0';
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n
                                                : nullptr;
        };
        const char *v;
        if ((v = val("--seeds="))) {
            if (!parseU64(v, opt.seeds))
                return false;
        } else if ((v = val("--seqs="))) {
            if (!parseU64(v, opt.seqs))
                return false;
        } else if ((v = val("--diff="))) {
            if (!parseU64(v, opt.diff))
                return false;
        } else if ((v = val("--caps="))) {
            if (!parseU64(v, opt.caps))
                return false;
        } else if ((v = val("--caps-ops="))) {
            if (!parseU64(v, opt.capsOps))
                return false;
        } else if ((v = val("--seed-base="))) {
            if (!parseU64(v, opt.seedBase))
                return false;
        } else if ((v = val("--inv-stride="))) {
            if (!parseU64(v, opt.invStride) || opt.invStride == 0)
                return false;
        } else if ((v = val("--jobs="))) {
            std::uint64_t j;
            if (!parseU64(v, j) || j == 0)
                return false;
            opt.jobs = static_cast<unsigned>(j);
        } else if ((v = val("--faults="))) {
            if (!std::strcmp(v, "off"))
                opt.faults = 0;
            else if (!std::strcmp(v, "on"))
                opt.faults = 1;
            else if (!std::strcmp(v, "both"))
                opt.faults = 2;
            else
                return false;
        } else if ((v = val("--replay="))) {
            opt.replay = v;
        } else if ((v = val("--shrink-out="))) {
            opt.shrinkOut = v;
        } else if (a == "--buggy") {
            opt.buggy = true;
        } else if (a == "-v" || a == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         a.c_str());
            return false;
        }
    }
    return true;
}

void
reportFailure(const m3v::fuzz::Scenario &sc,
              const m3v::fuzz::Outcome &out, const Options &opt,
              m3v::fuzz::RigMode mode, unsigned jobs)
{
    std::fprintf(stderr,
                 "FAIL: scenario seed=%llu ops=%zu kills=%zu "
                 "faults=%d buggy=%d\n",
                 static_cast<unsigned long long>(sc.seed),
                 sc.ops.size(), sc.kills.size(), sc.faults ? 1 : 0,
                 sc.buggy ? 1 : 0);
    for (const std::string &e : out.errors)
        std::fprintf(stderr, "  %s\n", e.c_str());
    m3v::fuzz::Scenario small =
        m3v::fuzz::shrinkScenario(sc, mode, jobs);
    std::fprintf(stderr, "shrunk to %zu ops, %zu kills\n",
                 small.ops.size(), small.kills.size());
    if (!opt.shrinkOut.empty()) {
        if (m3v::fuzz::writeTraceFile(small, opt.shrinkOut))
            std::fprintf(stderr, "trace written to %s\n",
                         opt.shrinkOut.c_str());
    } else {
        std::ostringstream os;
        m3v::fuzz::writeTrace(small, os);
        std::fprintf(stderr, "--- trace (replay with --replay) ---\n"
                             "%s---\n",
                     os.str().c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace m3v::fuzz;
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (!opt.replay.empty()) {
        Scenario sc;
        if (!readTraceFile(opt.replay, sc)) {
            std::fprintf(stderr, "cannot read trace %s\n",
                         opt.replay.c_str());
            return 2;
        }
        Outcome out = runScenario(sc, RigMode::Single, 1, 1);
        std::printf("replay: seed=%llu ops=%zu digest=%016llx "
                    "sendsOk=%llu recvs=%llu %s\n",
                    static_cast<unsigned long long>(sc.seed),
                    sc.ops.size(),
                    static_cast<unsigned long long>(out.digest),
                    static_cast<unsigned long long>(out.sendsOk),
                    static_cast<unsigned long long>(out.recvs),
                    out.failed() ? "FAIL" : "ok");
        for (const std::string &e : out.errors)
            std::printf("  %s\n", e.c_str());
        return out.failed() ? 1 : 0;
    }

    std::uint64_t ran = 0, sendsOk = 0, recvs = 0;
    for (std::uint64_t s = 0; s < opt.seeds; s++) {
        std::uint64_t stream = opt.seedBase + s;
        for (std::uint64_t i = 0; i < opt.seqs; i++) {
            bool faults = opt.faults == 1 ||
                          (opt.faults == 2 && i % 2 == 1);
            Scenario sc = makeScenario(stream, i, faults, true);
            sc.buggy = opt.buggy;
            Outcome out =
                runScenario(sc, RigMode::Single, 1, opt.invStride);
            ran++;
            sendsOk += out.sendsOk;
            recvs += out.recvs;
            if (out.failed()) {
                reportFailure(sc, out, opt, RigMode::Single, 1);
                return 1;
            }
        }
        for (std::uint64_t i = 0; i < opt.diff; i++) {
            bool faults = opt.faults == 1 ||
                          (opt.faults == 2 && i % 2 == 1);
            // Disjoint index range from the single-mode scenarios.
            Scenario sc =
                makeScenario(stream, 1u << 20 | i, faults, true);
            sc.buggy = opt.buggy;
            Outcome out = runDifferential(sc, opt.invStride);
            ran++;
            sendsOk += out.sendsOk;
            recvs += out.recvs;
            if (out.failed()) {
                reportFailure(sc, out, opt, RigMode::Laned,
                              opt.jobs);
                return 1;
            }
        }
        if (opt.verbose)
            std::fprintf(stderr, "seed stream %llu done\n",
                         static_cast<unsigned long long>(stream));
    }
    std::uint64_t capsOk = 0;
    for (std::uint64_t i = 0; i < opt.caps; i++) {
        CapsOutcome out =
            runCapsScenario(opt.seedBase + i, opt.capsOps);
        ran++;
        capsOk += out.opsOk;
        if (out.failed()) {
            std::fprintf(stderr,
                         "FAIL: caps scenario seed=%llu\n",
                         static_cast<unsigned long long>(
                             opt.seedBase + i));
            for (const std::string &e : out.errors)
                std::fprintf(stderr, "  %s\n", e.c_str());
            return 1;
        }
    }
    if (opt.caps > 0) {
        // One jobs=1-vs-4 digest differential over four cells.
        CapsOutcome out =
            runCapsDifferential(opt.seedBase, opt.capsOps, 4);
        ran += 8;
        capsOk += out.opsOk;
        if (out.failed()) {
            std::fprintf(stderr, "FAIL: caps differential\n");
            for (const std::string &e : out.errors)
                std::fprintf(stderr, "  %s\n", e.c_str());
            return 1;
        }
    }
    std::printf("fuzz: %llu scenarios ok (%llu sends acked, "
                "%llu messages received, %llu cap ops)\n",
                static_cast<unsigned long long>(ran),
                static_cast<unsigned long long>(sendsOk),
                static_cast<unsigned long long>(recvs),
                static_cast<unsigned long long>(capsOk));
    return 0;
}
