/**
 * @file
 * Model-based protocol fuzzer for the vDTU/TileMux/NoC stack.
 *
 * A Scenario is a seeded, fully deterministic program: a flat list of
 * operations (noop/send/wait/yield/exit, plus the overload vocabulary
 * burst/shed/trip) distributed over six activities on two multiplexed
 * tiles, plus optional crash injections at fixed ticks and optional
 * NoC fault injection. runScenario()
 * executes it on a freshly built platform — either on a single event
 * queue or on the sharded LaneScheduler — with the sim::Invariants
 * registries attached, and checks the outcome against a reference
 * model of the message protocol:
 *
 *  - at-most-once: no payload tag is ever observed twice across all
 *    receivers (wire-level duplicate suppression);
 *  - exactly-once: in kill-free runs, every send that completed with
 *    Error::None is either recorded by the receiver or still unread
 *    in its receive ring, unless the receiver exited (reset drops);
 *  - all registered invariants hold at every event boundary and at
 *    quiescence (credit conservation, CUR_ACT bookkeeping, engine
 *    drain, scheduler sanity, lost-wakeup protection).
 *
 * runDifferential() executes the same scenario at --jobs=1 and
 * --jobs=4 on the laned scheduler and requires bit-identical
 * observable-state digests. Failing scenarios shrink (ddmin) to a
 * minimal reproduction and round-trip through a text trace file.
 */

#ifndef M3VSIM_TESTS_FUZZ_FUZZ_H_
#define M3VSIM_TESTS_FUZZ_FUZZ_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace m3v::fuzz {

/** One operation of an activity's program. */
enum class OpKind : std::uint8_t
{
    Noop,  ///< compute for 100 + arg % 4000 cycles
    Send,  ///< send on the local (arg even) or remote (odd) send EP
    Wait,  ///< wait TMCall on own recv EP, then drain and ack
    Yield, ///< yield TMCall
    Exit,  ///< exit TMCall (drops the rest of the program)

    //
    // Overload vocabulary: deterministic drivers for the resilience
    // state machines (sim/overload.h), whose end state folds into the
    // differential digest.
    //
    Burst, ///< arrival burst: 1-3 back-to-back sends gated by the
           ///< activity's circuit breaker; failures spend retry-
           ///< budget tokens
    Shed,  ///< non-blocking drain of own recv EP, each fetched
           ///< request run through the admission shed decision
           ///< (queue age + ring occupancy)
    Trip,  ///< drive the breaker trip/reset edges and the retry
           ///< budget directly with an arg-derived outcome pattern

    FanIn, ///< ungated back-to-back sends on the remote EP: many
           ///< activities' remote EPs converge on one receiver,
           ///< exercising doorbell coalescing and the MPSC mailbox
           ///< merge under the laned differential
};

const char *opKindName(OpKind k);

struct Op
{
    std::uint8_t actIdx = 0; ///< 0..5 (tile = actIdx / 3)
    OpKind kind = OpKind::Noop;
    std::uint32_t arg = 0;
};

/** A crash injected at a fixed tick (controller kill). */
struct KillEvent
{
    std::uint64_t tick = 0;
    std::uint8_t actIdx = 0;
};

/** A deterministic fuzz case; replayable from its fields alone. */
struct Scenario
{
    std::uint64_t seed = 0;
    bool faults = false; ///< NoC drop/corrupt fault injection
    bool buggy = false;  ///< enable the credit-leak test fixture
    std::vector<KillEvent> kills;
    std::vector<Op> ops;
};

/** Generate scenario @p index of stream @p seed. */
Scenario makeScenario(std::uint64_t seed, std::uint64_t index,
                      bool faults, bool allow_kills);

enum class RigMode : std::uint8_t
{
    Single, ///< one EventQueue, all invariants attached inline
    Laned,  ///< LaneScheduler shards, cross-lane laws checked after
};

/** Result of one scenario execution. */
struct Outcome
{
    /** Observable-state digest (FNV-1a over model end state). */
    std::uint64_t digest = 0;
    /** Invariant violations and reference-model mismatches. */
    std::vector<std::string> errors;
    std::uint64_t sendsOk = 0;
    std::uint64_t recvs = 0;
    /** The credit-leak fixture fired (buggy scenarios only). */
    bool leaked = false;

    bool failed() const { return !errors.empty(); }
};

/**
 * Build the platform, run the scenario to quiescence, evaluate the
 * invariants and the reference model. @p inv_stride thins the
 * per-event-boundary checks (1 = every boundary).
 */
Outcome runScenario(const Scenario &sc, RigMode mode,
                    unsigned jobs = 1, std::uint64_t inv_stride = 1);

/**
 * Run the scenario on the laned scheduler at jobs=1 and jobs=4 and
 * require identical digests; per-run failures and any divergence are
 * reported in the returned Outcome.
 */
Outcome runDifferential(const Scenario &sc,
                        std::uint64_t inv_stride = 1);

/**
 * Shrink a failing scenario (ddmin over ops, then kill removal) while
 * it keeps failing under @p mode/@p jobs. Returns the smallest
 * still-failing scenario found (the input if it does not fail).
 */
Scenario shrinkScenario(const Scenario &sc, RigMode mode,
                        unsigned jobs = 1);

//
// Trace files: a human-readable, replayable serialization.
//
void writeTrace(const Scenario &sc, std::ostream &os);
bool readTrace(std::istream &is, Scenario &sc);
bool writeTraceFile(const Scenario &sc, const std::string &path);
bool readTraceFile(const std::string &path, Scenario &sc);

} // namespace m3v::fuzz

#endif // M3VSIM_TESTS_FUZZ_FUZZ_H_
