/**
 * @file
 * Tests for the Linux reference model: syscall costs, scheduling,
 * tmpfs data integrity and timing shape (writes slower than reads,
 * icache pollution), UDP sockets, and rusage accounting.
 */

#include <gtest/gtest.h>

#include <string>

#include "linuxref/kernel.h"

namespace m3v::linuxref {
namespace {

Bytes
bytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

class LinuxTest : public ::testing::Test
{
  protected:
    LinuxTest()
        : core(eq, "linux.core", tile::CoreModel::boom(), 0),
          kernel(eq, "linux", core)
    {
    }

    sim::EventQueue eq;
    tile::Core core;
    LinuxKernel kernel;
};

TEST_F(LinuxTest, NoopSyscallCostsAboutAThousandCycles)
{
    auto *p = kernel.createProcess("app");
    sim::Tick t0 = 0, t1 = 0;
    int n = 0;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        // Warm up, then measure 100 calls.
        for (int i = 0; i < 10; i++)
            co_await kernel.sysNoop(*p);
        t0 = eq.now();
        for (int i = 0; i < 100; i++) {
            co_await kernel.sysNoop(*p);
            n++;
        }
        t1 = eq.now();
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    ASSERT_EQ(n, 100);
    double cycles_per_call = static_cast<double>(t1 - t0) / 100 /
                             12'500; // BOOM: 12.5 ns/cycle
    // Warm no-op syscall: several hundred cycles up to ~2k.
    EXPECT_GT(cycles_per_call, 300);
    EXPECT_LT(cycles_per_call, 2500);
}

TEST_F(LinuxTest, YieldPingPongAlternates)
{
    auto *a = kernel.createProcess("a");
    auto *b = kernel.createProcess("b");
    std::vector<int> order;
    auto body = [&](LinuxProcess *p, int tag) -> sim::Task {
        for (int i = 0; i < 3; i++) {
            order.push_back(tag);
            co_await kernel.sysYield(*p);
        }
        co_await kernel.sysExit(*p);
    };
    kernel.start(a, body(a, 1));
    kernel.start(b, body(b, 2));
    eq.run();
    ASSERT_EQ(order.size(), 6u);
    for (std::size_t i = 0; i < order.size(); i++)
        EXPECT_EQ(order[i], i % 2 == 0 ? 1 : 2);
    EXPECT_GE(kernel.ctxSwitches(), 5u);
}

TEST_F(LinuxTest, TmpfsDataRoundTrip)
{
    auto *p = kernel.createProcess("app");
    bool ok = false;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        int fd = -1;
        co_await kernel.sysOpen(*p, "/f", kOWrite | kOCreate, &fd);
        EXPECT_GE(fd, 0);
        std::size_t w = 0;
        co_await kernel.sysWrite(*p, fd, bytes("linux tmpfs data"),
                                 &w);
        EXPECT_EQ(w, 16u);
        co_await kernel.sysClose(*p, fd);

        co_await kernel.sysOpen(*p, "/f", kORead, &fd);
        Bytes back;
        co_await kernel.sysRead(*p, fd, 100, &back);
        EXPECT_EQ(std::string(back.begin(), back.end()),
                  "linux tmpfs data");
        co_await kernel.sysRead(*p, fd, 100, &back);
        EXPECT_TRUE(back.empty());
        co_await kernel.sysClose(*p, fd);
        ok = true;
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    EXPECT_TRUE(ok);
}

TEST_F(LinuxTest, WritesSlowerThanReads)
{
    auto *p = kernel.createProcess("app");
    sim::Tick wtime = 0, rtime = 0;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        constexpr int kBlocks = 64;
        Bytes buf(4096, 0xab);
        int fd = -1;
        co_await kernel.sysOpen(*p, "/f", kOWrite | kOCreate, &fd);
        sim::Tick t0 = eq.now();
        for (int i = 0; i < kBlocks; i++) {
            std::size_t w;
            co_await kernel.sysWrite(*p, fd, buf, &w);
        }
        wtime = eq.now() - t0;
        co_await kernel.sysClose(*p, fd);

        co_await kernel.sysOpen(*p, "/f", kORead, &fd);
        t0 = eq.now();
        for (int i = 0; i < kBlocks; i++) {
            Bytes b;
            co_await kernel.sysRead(*p, fd, 4096, &b);
        }
        rtime = eq.now() - t0;
        co_await kernel.sysClose(*p, fd);
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    // Fresh pages must be allocated and cleared on the write path.
    EXPECT_GT(wtime, rtime);
    EXPECT_LT(wtime, rtime * 5);
}

TEST_F(LinuxTest, BigAppThrashesOnSyscalls)
{
    // An app whose footprint plus the kernel file path exceed L1I
    // pays refills on every call; a tiny app does not.
    auto measure = [](std::size_t footprint) {
        sim::EventQueue eq;
        tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
        LinuxKernel kernel(eq, "k", core);
        auto *p = kernel.createProcess("app", footprint);
        sim::Tick t0 = 0, t1 = 0;
        kernel.start(p, sim::invoke([&kernel, p, &t0, &t1,
                                     &eq]() -> sim::Task {
            int fd = -1;
            co_await kernel.sysOpen(*p, "/f",
                                    kOWrite | kOCreate, &fd);
            std::size_t w;
            co_await kernel.sysWrite(*p, fd, Bytes(4096, 1), &w);
            co_await kernel.sysLseek(*p, fd, 0);
            // Warm up.
            for (int i = 0; i < 4; i++) {
                Bytes b;
                co_await kernel.sysLseek(*p, fd, 0);
                co_await kernel.sysRead(*p, fd, 4096, &b);
                // App "works" on its footprint between calls: the
                // cache model sees this as touching its region.
                co_await p->thread().compute(1000);
            }
            t0 = eq.now();
            for (int i = 0; i < 50; i++) {
                Bytes b;
                co_await kernel.sysLseek(*p, fd, 0);
                co_await kernel.sysRead(*p, fd, 4096, &b);
            }
            t1 = eq.now();
            co_await kernel.sysExit(*p);
        }));
        eq.run();
        return t1 - t0;
    };
    sim::Tick small = measure(2 * 1024);
    sim::Tick big = measure(14 * 1024);
    EXPECT_GT(big, small + small / 10);
}

TEST_F(LinuxTest, RusageSplitsUserAndSystem)
{
    auto *p = kernel.createProcess("app");
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        co_await p->thread().compute(100'000);
        for (int i = 0; i < 50; i++)
            co_await kernel.sysNoop(*p);
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    EXPECT_GE(p->userTicks(), 100'000u * 12'500);
    EXPECT_GT(p->systemTicks(), 0u);
    EXPECT_GT(kernel.syscalls(), 50u);
}

TEST(LinuxNetTest, UdpEchoThroughNic)
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Echo);
    nic.connect(&host);
    host.connect(&nic);
    LinuxKernel kernel(eq, "k", core, LinuxCosts{}, &nic);

    auto *p = kernel.createProcess("app");
    bool ok = false;
    sim::Tick t0 = 0, t1 = 0;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        int s = -1;
        co_await kernel.sysSocket(*p, 7000, &s);
        EXPECT_GE(s, 0);
        t0 = eq.now();
        co_await kernel.sysSendTo(*p, s, 0x0a000001, 9, bytes("x"));
        Bytes back;
        co_await kernel.sysRecvFrom(*p, s, &back);
        t1 = eq.now();
        EXPECT_EQ(back.size(), 1u);
        ok = true;
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    EXPECT_TRUE(ok);
    // Dominated by wire + host turnaround.
    EXPECT_GT(t1 - t0, 100 * sim::kTicksPerUs);
    EXPECT_LT(t1 - t0, 1500 * sim::kTicksPerUs);
}

TEST(LinuxNetTest, BlockingRecvYieldsCoreToOtherProcess)
{
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Echo);
    nic.connect(&host);
    host.connect(&nic);
    LinuxKernel kernel(eq, "k", core, LinuxCosts{}, &nic);

    auto *rx = kernel.createProcess("rx");
    auto *worker = kernel.createProcess("worker");
    int work = 0;
    bool got = false;
    kernel.start(rx, sim::invoke([&]() -> sim::Task {
        int s = -1;
        co_await kernel.sysSocket(*rx, 7000, &s);
        co_await kernel.sysSendTo(*rx, s, 0x0a000001, 9, bytes("x"));
        Bytes back;
        co_await kernel.sysRecvFrom(*rx, s, &back); // blocks ~300us
        got = true;
        co_await kernel.sysExit(*rx);
    }));
    kernel.start(worker, sim::invoke([&]() -> sim::Task {
        for (int i = 0; i < 20; i++) {
            co_await worker->thread().compute(1000);
            work++;
        }
        co_await kernel.sysExit(*worker);
    }));
    eq.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(work, 20); // worker ran while rx blocked
}

} // namespace
} // namespace m3v::linuxref
