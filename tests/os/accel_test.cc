/**
 * @file
 * Tests for autonomous accelerator tiles: single-stage jobs,
 * multi-stage pipelines with no core in the loop, and data
 * correctness through real transforms.
 */

#include <gtest/gtest.h>

#include "os/accel.h"
#include "os/system.h"

namespace m3v::os {
namespace {

using dtu::Endpoint;
using dtu::kPermRW;

Bytes
pattern(std::size_t n)
{
    Bytes b(n);
    for (std::size_t i = 0; i < n; i++)
        b[i] = static_cast<std::uint8_t>(i * 7 + 3);
    return b;
}

class AccelTest : public ::testing::Test
{
  protected:
    AccelTest()
    {
        params.userTiles = 1;
        params.accelTiles = 2;
        sys = std::make_unique<System>(eq, params);
    }

    sim::EventQueue eq;
    SystemParams params;
    std::unique_ptr<System> sys;
};

TEST_F(AccelTest, SingleStageTransformsData)
{
    auto *app = sys->createApp(0, "app");
    auto buf_in = sys->makeMgate(app, 64 * 1024, kPermRW);
    auto buf_out = sys->makeMgate(app, 64 * 1024, kPermRW);
    auto done_rep = sys->makeRgate(app, 64, 4);

    AccelTile &acc = sys->accel(0);
    acc.setTransform([](const Bytes &in) {
        Bytes out(in.size());
        for (std::size_t i = 0; i < in.size(); i++)
            out[i] = static_cast<std::uint8_t>(in[i] ^ 0xff);
        return out;
    });
    // Wire the accelerator's channels (controller boot config).
    acc.dtu().configEp(kAccelCmdRep, Endpoint::makeRecv(0, 64, 4));
    acc.dtu().configEp(
        kAccelFwdSep,
        Endpoint::makeSend(0, sys->userTile(0), done_rep.ep, 9, 4));
    acc.dtu().configEp(kAccelInMep,
                       Endpoint::makeMem(0, sys->memTileId(0),
                                         buf_in.addr, buf_in.size,
                                         kPermRW));
    acc.dtu().configEp(kAccelOutMep,
                       Endpoint::makeMem(0, sys->memTileId(0),
                                         buf_out.addr, buf_out.size,
                                         kPermRW));
    // App's send gate towards the accelerator's command EP.
    dtu::EpId cmd_sep = sys->allocEp(0);
    sys->vdtu(0).configEp(
        cmd_sep,
        Endpoint::makeSend(app->act->id(), acc.tileId(),
                           kAccelCmdRep, 1, 4));
    acc.startDriver();

    Bytes input = pattern(10'000);
    bool done = false;
    sys->start(app, [&, buf_in, buf_out, done_rep,
                     cmd_sep](MuxEnv &env) -> sim::Task {
        dtu::Error err = dtu::Error::None;
        for (std::size_t off = 0; off < input.size();
             off += dtu::kPageSize) {
            std::size_t n = std::min<std::size_t>(
                dtu::kPageSize, input.size() - off);
            co_await env.writeMem(
                buf_in.ep, off,
                Bytes(input.begin() + static_cast<long>(off),
                      input.begin() + static_cast<long>(off + n)),
                &err);
        }
        AccelJob job;
        job.inOff = 0;
        job.len = static_cast<std::uint32_t>(input.size());
        job.outOff = 0;
        job.tag = 42;
        co_await env.send(cmd_sep, podBytes(job), dtu::kInvalidEp,
                          &err);

        int slot = -1;
        co_await env.recvOn(done_rep.ep, &slot);
        AccelJob fin =
            podFrom<AccelJob>(env.msgAt(done_rep.ep, slot).payload);
        co_await env.ackMsg(done_rep.ep, slot);
        EXPECT_EQ(fin.tag, 42u);
        EXPECT_EQ(fin.len, input.size());

        // Verify the transformed output.
        Bytes out;
        for (std::size_t off = 0; off < input.size();
             off += dtu::kPageSize) {
            Bytes page;
            co_await env.readMem(
                buf_out.ep, off,
                std::min<std::size_t>(dtu::kPageSize,
                                      input.size() - off),
                &page, &err);
            out.insert(out.end(), page.begin(), page.end());
        }
        bool all_ok = out.size() == input.size();
        for (std::size_t i = 0; all_ok && i < out.size(); i++)
            all_ok = out[i] == static_cast<std::uint8_t>(
                                   input[i] ^ 0xff);
        EXPECT_TRUE(all_ok);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(acc.jobsProcessed(), 1u);
}

TEST_F(AccelTest, TwoStagePipelineRunsAutonomously)
{
    auto *app = sys->createApp(0, "app");
    auto buf_a = sys->makeMgate(app, 64 * 1024, kPermRW);
    auto buf_b = sys->makeMgate(app, 64 * 1024, kPermRW);
    auto done_rep = sys->makeRgate(app, 64, 4);

    AccelTile &s1 = sys->accel(0);
    AccelTile &s2 = sys->accel(1);
    s1.setTransform([](const Bytes &in) {
        Bytes out(in);
        for (auto &b : out)
            b = static_cast<std::uint8_t>(b + 1);
        return out;
    });
    s2.setTransform([](const Bytes &in) {
        Bytes out(in);
        for (auto &b : out)
            b = static_cast<std::uint8_t>(b * 2);
        return out;
    });

    // Stage 1: reads buf_a, writes buf_b, forwards to stage 2.
    s1.dtu().configEp(kAccelCmdRep, Endpoint::makeRecv(0, 64, 4));
    s1.dtu().configEp(kAccelFwdSep,
                      Endpoint::makeSend(0, s2.tileId(),
                                         kAccelCmdRep, 1, 4));
    s1.dtu().configEp(kAccelInMep,
                      Endpoint::makeMem(0, sys->memTileId(0),
                                        buf_a.addr, buf_a.size,
                                        kPermRW));
    s1.dtu().configEp(kAccelOutMep,
                      Endpoint::makeMem(0, sys->memTileId(0),
                                        buf_b.addr, buf_b.size,
                                        kPermRW));
    // Stage 2: reads buf_b, writes buf_b in place, notifies the app.
    s2.dtu().configEp(kAccelCmdRep, Endpoint::makeRecv(0, 64, 4));
    s2.dtu().configEp(
        kAccelFwdSep,
        Endpoint::makeSend(0, sys->userTile(0), done_rep.ep, 9, 4));
    s2.dtu().configEp(kAccelInMep,
                      Endpoint::makeMem(0, sys->memTileId(0),
                                        buf_b.addr, buf_b.size,
                                        kPermRW));
    s2.dtu().configEp(kAccelOutMep,
                      Endpoint::makeMem(0, sys->memTileId(0),
                                        buf_b.addr, buf_b.size,
                                        kPermRW));
    dtu::EpId cmd_sep = sys->allocEp(0);
    sys->vdtu(0).configEp(
        cmd_sep, Endpoint::makeSend(app->act->id(), s1.tileId(),
                                    kAccelCmdRep, 1, 4));
    s1.startDriver();
    s2.startDriver();

    Bytes input = pattern(6000);
    bool done = false;
    sys->start(app, [&, buf_a, buf_b, done_rep,
                     cmd_sep](MuxEnv &env) -> sim::Task {
        dtu::Error err = dtu::Error::None;
        for (std::size_t off = 0; off < input.size();
             off += dtu::kPageSize) {
            std::size_t n = std::min<std::size_t>(
                dtu::kPageSize, input.size() - off);
            co_await env.writeMem(
                buf_a.ep, off,
                Bytes(input.begin() + static_cast<long>(off),
                      input.begin() + static_cast<long>(off + n)),
                &err);
        }
        AccelJob job;
        job.len = static_cast<std::uint32_t>(input.size());
        job.tag = 7;
        co_await env.send(cmd_sep, podBytes(job), dtu::kInvalidEp,
                          &err);
        int slot = -1;
        co_await env.recvOn(done_rep.ep, &slot);
        co_await env.ackMsg(done_rep.ep, slot);

        Bytes out;
        for (std::size_t off = 0; off < input.size();
             off += dtu::kPageSize) {
            Bytes page;
            co_await env.readMem(
                buf_b.ep, off,
                std::min<std::size_t>(dtu::kPageSize,
                                      input.size() - off),
                &page, &err);
            out.insert(out.end(), page.begin(), page.end());
        }
        bool all_ok = out.size() == input.size();
        for (std::size_t i = 0; all_ok && i < out.size(); i++) {
            auto expect = static_cast<std::uint8_t>(
                static_cast<std::uint8_t>(input[i] + 1) * 2);
            all_ok = out[i] == expect;
        }
        EXPECT_TRUE(all_ok);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    // Both stages ran exactly one job, chained without the app (or
    // any general-purpose core) in between.
    EXPECT_EQ(s1.jobsProcessed(), 1u);
    EXPECT_EQ(s2.jobsProcessed(), 1u);
}

} // namespace
} // namespace m3v::os
