/**
 * @file
 * Unit tests for the capability system: derivation trees, delegation
 * across tables, and recursive revocation.
 */

#include <gtest/gtest.h>

#include "os/caps.h"

namespace m3v::os {
namespace {

std::shared_ptr<KObject>
memObj(std::size_t size)
{
    auto obj = std::make_shared<KObject>();
    obj->kind = CapKind::MemGate;
    obj->mem = MemObj{0, 0, size, dtu::kPermRW};
    return obj;
}

TEST(CapTable, InsertAndGet)
{
    CapTable t(1);
    CapSel sel = t.insertRoot(memObj(4096));
    ASSERT_NE(t.get(sel), nullptr);
    EXPECT_EQ(t.get(sel)->obj().kind, CapKind::MemGate);
    EXPECT_EQ(t.get(999), nullptr);
    EXPECT_EQ(t.size(), 1u);
}

TEST(CapTable, ChildrenTrackParent)
{
    CapTable t(1);
    CapSel root = t.insertRoot(memObj(4096));
    CapSel child = t.insertChild(memObj(1024), *t.get(root));
    EXPECT_EQ(t.get(child)->parent, t.get(root));
    EXPECT_EQ(t.get(root)->children.size(), 1u);
}

TEST(CapTable, RevokeRemovesSubtree)
{
    CapTable t(1);
    CapSel root = t.insertRoot(memObj(4096));
    CapSel c1 = t.insertChild(memObj(1024), *t.get(root));
    t.insertChild(memObj(512), *t.get(c1));
    int revoked = 0;
    std::size_t n =
        t.revoke(root, [&](Capability &) { revoked++; }, false);
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(revoked, 3);
    EXPECT_EQ(t.size(), 0u);
}

TEST(CapTable, RevokeKeepRootSparesRoot)
{
    CapTable t(1);
    CapSel root = t.insertRoot(memObj(4096));
    t.insertChild(memObj(1024), *t.get(root));
    t.insertChild(memObj(1024), *t.get(root));
    std::size_t n = t.revoke(root, [](Capability &) {}, true);
    EXPECT_EQ(n, 2u);
    ASSERT_NE(t.get(root), nullptr);
    EXPECT_TRUE(t.get(root)->children.empty());
}

TEST(CapMgr, DelegationCrossesTablesAndRevokes)
{
    CapMgr mgr;
    CapTable &ta = mgr.tableOf(1);
    CapTable &tb = mgr.tableOf(2);
    CapSel root = ta.insertRoot(memObj(4096));
    // Delegate: child in B's table sharing the object.
    CapSel dsel = tb.insertChild(ta.get(root)->objPtr(),
                                 *ta.get(root));
    ASSERT_NE(tb.get(dsel), nullptr);

    // Revoking A's root removes B's delegated cap too.
    int revoked = 0;
    std::size_t n =
        mgr.revoke(1, root, [&](Capability &) { revoked++; });
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(tb.get(dsel), nullptr);
    EXPECT_EQ(ta.get(root), nullptr);
}

TEST(CapMgr, DeepDelegationChainRevokesAll)
{
    CapMgr mgr;
    CapSel prev_sel = mgr.tableOf(1).insertRoot(memObj(1 << 20));
    Capability *prev = mgr.tableOf(1).get(prev_sel);
    for (dtu::ActId act = 2; act <= 6; act++) {
        CapSel s =
            mgr.tableOf(act).insertChild(prev->objPtr(), *prev);
        prev = mgr.tableOf(act).get(s);
    }
    std::size_t n = mgr.revoke(1, prev_sel, [](Capability &) {});
    EXPECT_EQ(n, 6u);
    for (dtu::ActId act = 2; act <= 6; act++)
        EXPECT_EQ(mgr.tableOf(act).size(), 0u);
}

TEST(CapMgr, DropTableRevokesDelegatedDescendants)
{
    CapMgr mgr;
    CapSel root = mgr.tableOf(1).insertRoot(memObj(4096));
    mgr.tableOf(2).insertChild(mgr.tableOf(1).get(root)->objPtr(),
                               *mgr.tableOf(1).get(root));
    mgr.dropTable(1, [](Capability &) {});
    EXPECT_FALSE(mgr.hasTable(1));
    EXPECT_EQ(mgr.tableOf(2).size(), 0u);
}

TEST(CapMgr, SiblingSubtreesAreIndependent)
{
    CapMgr mgr;
    CapTable &t = mgr.tableOf(1);
    CapSel root = t.insertRoot(memObj(8192));
    CapSel a = t.insertChild(memObj(4096), *t.get(root));
    CapSel b = t.insertChild(memObj(4096), *t.get(root));
    mgr.revoke(1, a, [](Capability &) {});
    EXPECT_EQ(t.get(a), nullptr);
    ASSERT_NE(t.get(b), nullptr);
    ASSERT_NE(t.get(root), nullptr);
    EXPECT_EQ(t.get(root)->children.size(), 1u);
}

} // namespace
} // namespace m3v::os
