/**
 * @file
 * Sharded-controller tests (DESIGN.md section 4i): per-quadrant
 * controllers with partitioned capability tables, the cross-shard
 * delegate/obtain/revoke protocol, two-phase revocation racing
 * in-flight operations, crash reaping across shards, and the
 * conservation laws of registerControllerInvariants().
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "os/system.h"

namespace m3v::os {
namespace {

using dtu::Error;

/** 8 user tiles / 4 shards: quadrants of two tiles each. */
SystemParams
shardedParams(unsigned shards = 4)
{
    SystemParams p;
    p.ctrlShards = shards;
    return p;
}

std::uint64_t
u64At(const Bytes &b)
{
    std::uint64_t v = 0;
    std::memcpy(&v, b.data(), std::min<std::size_t>(8, b.size()));
    return v;
}

TEST(ShardMapTest, AutoShardCount)
{
    EXPECT_EQ(autoCtrlShards(8), 1u);
    EXPECT_EQ(autoCtrlShards(63), 1u);
    EXPECT_EQ(autoCtrlShards(64), 4u);
    EXPECT_EQ(autoCtrlShards(256), 8u);
    EXPECT_EQ(autoCtrlShards(1024), 16u);
}

TEST(ShardMapTest, QuadrantPartition)
{
    ShardMap m{4, 8};
    EXPECT_EQ(m.shardOfTile(0), 0u);
    EXPECT_EQ(m.shardOfTile(1), 0u);
    EXPECT_EQ(m.shardOfTile(2), 1u);
    EXPECT_EQ(m.shardOfTile(6), 3u);
    EXPECT_EQ(m.shardOfTile(7), 3u);
    EXPECT_EQ(m.quadrantBegin(0), 0u);
    EXPECT_EQ(m.quadrantEnd(0), 2u);
    EXPECT_EQ(m.quadrantBegin(3), 6u);
    EXPECT_EQ(m.quadrantEnd(3), 8u);
    // Non-user tiles (controller, memory) belong to shard 0.
    EXPECT_EQ(m.shardOfTile(9), 0u);
}

TEST(ShardMapTest, PaperConfigKeepsSingleController)
{
    sim::EventQueue eq;
    System sys(eq);
    EXPECT_EQ(sys.ctrlShards(), 1u);
    eq.run();
}

TEST(ShardMapTest, EnvOverridesAutoButNotExplicit)
{
    setenv("M3V_CTRL_SHARDS", "2", 1);
    {
        sim::EventQueue eq;
        System sys(eq); // auto -> env wins
        EXPECT_EQ(sys.ctrlShards(), 2u);
        eq.run();
    }
    {
        sim::EventQueue eq;
        System sys(eq, shardedParams(4)); // explicit param wins
        EXPECT_EQ(sys.ctrlShards(), 4u);
        eq.run();
    }
    unsetenv("M3V_CTRL_SHARDS");
}

TEST(ShardMapTest, ShardedTopology)
{
    sim::EventQueue eq;
    System sys(eq, shardedParams(4));
    EXPECT_EQ(sys.ctrlShards(), 4u);
    // Extra controller tiles sit after the accelerators, so every
    // pre-shard tile id is unchanged.
    EXPECT_EQ(sys.ctrlTileOf(0), sys.ctrlTile());
    EXPECT_EQ(sys.ctrlTileOf(1), 11u);
    EXPECT_EQ(sys.ctrlTileOf(3), 13u);
    EXPECT_EQ(&sys.controllerOf(0), &sys.controller());
    EXPECT_EQ(sys.controllerOf(3).shard(), 3u);
    EXPECT_EQ(sys.capsOf(2).shard(), 2u);
    eq.run();
}

class ShardSystemTest : public ::testing::Test
{
  protected:
    ShardSystemTest() : sys(eq, shardedParams(4))
    {
        registerControllerInvariants(inv, sys);
    }

    /** Drain the queue, then assert the conservation laws. */
    void
    runAndCheck()
    {
        eq.run();
        inv.runAll(true);
        EXPECT_TRUE(inv.ok()) << inv.report();
    }

    sim::EventQueue eq;
    System sys;
    sim::Invariants inv;
};

TEST_F(ShardSystemTest, CrossShardDelegateAndUse)
{
    // A (tile 0, shard 0) owns DRAM storage and delegates a cap to B
    // (tile 7, shard 3). The copy lands in B's shard-3 table; B
    // activates it locally and accesses the memory directly.
    auto *a = sys.createApp(0, "a");
    auto *b = sys.createApp(7, "b");
    auto storage = sys.makeMgate(a, 1 << 20, dtu::kPermRW);
    CapSel b_act = sys.grantActCap(a, b);
    auto b_rep = sys.makeRgate(b);
    auto a_sg = sys.makeSgate(a, b, b_rep.ep, 1, 2);
    dtu::EpId b_mep = sys.allocEp(7);

    bool a_done = false, b_done = false;
    sys.start(a, [&, storage, b_act, a_sg](MuxEnv &env) -> sim::Task {
        SyscallReq req;
        req.op = SyscallReq::Op::Delegate;
        req.arg0 = b_act;
        req.arg1 = storage.sel;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        // The new selector was minted by shard 3.
        EXPECT_EQ(selShard(static_cast<CapSel>(resp.val)), 3u);
        Error err = Error::Aborted;
        co_await env.send(a_sg.ep, podBytes(resp.val),
                          dtu::kInvalidEp, &err);
        EXPECT_EQ(err, Error::None);
        a_done = true;
    });
    sys.start(b, [&, b_rep, b_mep](MuxEnv &env) -> sim::Task {
        int slot = -1;
        co_await env.recvOn(b_rep.ep, &slot);
        auto sel =
            static_cast<CapSel>(u64At(env.msgAt(b_rep.ep, slot)
                                          .payload));
        co_await env.ackMsg(b_rep.ep, slot);

        SyscallReq req;
        req.op = SyscallReq::Op::Activate;
        req.arg0 = sel;
        req.arg1 = b_mep;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);

        Error err = Error::Aborted;
        Bytes data{'x', 'y', 'z'};
        co_await env.writeMem(b_mep, 64, data, &err);
        EXPECT_EQ(err, Error::None);
        Bytes back;
        co_await env.readMem(b_mep, 64, 3, &back, &err);
        EXPECT_EQ(err, Error::None);
        EXPECT_EQ(back, data);
        b_done = true;
    });

    runAndCheck();
    EXPECT_TRUE(a_done);
    EXPECT_TRUE(b_done);
    EXPECT_GE(sys.controllerOf(0).xshardSent(), 1u);
    EXPECT_GE(sys.controllerOf(0).xshardAcked(), 1u);
    EXPECT_GE(sys.controllerOf(3).xshardHandled(), 1u);
    EXPECT_EQ(sys.controllerOf(0).xshardTimeouts(), 0u);
}

TEST_F(ShardSystemTest, CrossShardObtain)
{
    // B (shard 3) pulls a copy of A's cap out of A's shard-0 table.
    auto *a = sys.createApp(0, "a");
    auto *b = sys.createApp(7, "b");
    auto storage = sys.makeMgate(a, 64 << 10, dtu::kPermRW);
    CapSel a_act = sys.grantActCap(b, a);
    dtu::EpId b_mep = sys.allocEp(7);

    bool b_done = false;
    sys.start(b, [&, a_act, storage, b_mep](MuxEnv &env)
                  -> sim::Task {
        SyscallReq req;
        req.op = SyscallReq::Op::Obtain;
        req.arg0 = a_act;
        req.arg1 = storage.sel;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        auto sel = static_cast<CapSel>(resp.val);
        EXPECT_EQ(selShard(sel), 3u);

        req = SyscallReq{};
        req.op = SyscallReq::Op::Activate;
        req.arg0 = sel;
        req.arg1 = b_mep;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);

        Error err = Error::Aborted;
        Bytes data{'o', 'b', 't'};
        co_await env.writeMem(b_mep, 0, data, &err);
        EXPECT_EQ(err, Error::None);
        b_done = true;
    });

    runAndCheck();
    EXPECT_TRUE(b_done);
    // Obtaining a nonexistent selector fails typed, not fatally: run
    // a second system call from a fresh app to check.
}

TEST_F(ShardSystemTest, CrossShardRevokeInvalidatesRemoteUse)
{
    // A delegates to B, B activates, A revokes: the revoke crosses
    // shards, reaps B's copy, and invalidates B's endpoint.
    auto *a = sys.createApp(0, "a");
    auto *b = sys.createApp(7, "b");
    auto storage = sys.makeMgate(a, 64 << 10, dtu::kPermRW);
    CapSel b_act = sys.grantActCap(a, b);
    auto b_rep = sys.makeRgate(b);
    auto a_sg = sys.makeSgate(a, b, b_rep.ep, 1, 2);
    dtu::EpId b_mep = sys.allocEp(7);

    bool a_done = false, b_done = false;
    sys.start(a, [&, storage, b_act, a_sg](MuxEnv &env) -> sim::Task {
        SyscallReq req;
        req.op = SyscallReq::Op::Delegate;
        req.arg0 = b_act;
        req.arg1 = storage.sel;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        Error err = Error::Aborted;
        co_await env.send(a_sg.ep, podBytes(resp.val),
                          dtu::kInvalidEp, &err);
        EXPECT_EQ(err, Error::None);

        // Give B time to activate and use the cap, then revoke the
        // whole subtree (A's cap + B's remote copy).
        co_await env.thread().compute(2'000'000);
        req = SyscallReq{};
        req.op = SyscallReq::Op::Revoke;
        req.arg0 = storage.sel;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        EXPECT_EQ(resp.val, 2u);
        a_done = true;
    });
    sys.start(b, [&, b_rep, b_mep](MuxEnv &env) -> sim::Task {
        int slot = -1;
        co_await env.recvOn(b_rep.ep, &slot);
        auto sel =
            static_cast<CapSel>(u64At(env.msgAt(b_rep.ep, slot)
                                          .payload));
        co_await env.ackMsg(b_rep.ep, slot);

        SyscallReq req;
        req.op = SyscallReq::Op::Activate;
        req.arg0 = sel;
        req.arg1 = b_mep;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        Error err = Error::Aborted;
        Bytes data{'h', 'i'};
        co_await env.writeMem(b_mep, 0, data, &err);
        EXPECT_EQ(err, Error::None);

        // After A's revoke lands, the endpoint is dead.
        co_await env.thread().compute(12'000'000);
        Bytes back;
        co_await env.readMem(b_mep, 0, 2, &back, &err);
        EXPECT_EQ(err, Error::InvalidEp);
        b_done = true;
    });

    runAndCheck();
    EXPECT_TRUE(a_done);
    EXPECT_TRUE(b_done);
}

TEST_F(ShardSystemTest, DoubleRevokeIdempotent)
{
    // Revoking an already-revoked subtree is a typed no-op on both
    // shards (retransmissions of revoke requests must not double-free).
    auto *a = sys.createApp(0, "a");
    auto *b = sys.createApp(7, "b");
    auto storage = sys.makeMgate(a, 64 << 10, dtu::kPermRW);
    CapSel b_act = sys.grantActCap(a, b);

    bool a_done = false;
    sys.start(a, [&, storage, b_act](MuxEnv &env) -> sim::Task {
        SyscallReq req;
        req.op = SyscallReq::Op::Delegate;
        req.arg0 = b_act;
        req.arg1 = storage.sel;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);

        req = SyscallReq{};
        req.op = SyscallReq::Op::Revoke;
        req.arg0 = storage.sel;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        EXPECT_EQ(resp.val, 2u);

        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        EXPECT_EQ(resp.val, 0u);
        a_done = true;
    });
    sys.start(b, [&](MuxEnv &env) -> sim::Task {
        co_await env.thread().compute(1);
    });

    runAndCheck();
    EXPECT_TRUE(a_done);
}

TEST_F(ShardSystemTest, CrashedHolderReapDropsShareRecords)
{
    // A delegates to B, then B's tile watchdog declares B crashed.
    // B's quadrant controller reaps its table; the DropShare one-way
    // must clear the share record on A's side of the edge.
    auto *a = sys.createApp(0, "a");
    auto *b = sys.createApp(7, "b");
    auto storage = sys.makeMgate(a, 64 << 10, dtu::kPermRW);
    CapSel b_act = sys.grantActCap(a, b);
    dtu::ActId b_id = b->act->id();

    sys.start(a, [&, storage, b_act](MuxEnv &env) -> sim::Task {
        SyscallReq req;
        req.op = SyscallReq::Op::Delegate;
        req.arg0 = b_act;
        req.arg1 = storage.sel;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
    });
    sys.start(b, [&](MuxEnv &env) -> sim::Task {
        co_await env.thread().compute(100'000'000);
    });
    // Crash B well after the delegation completed.
    eq.schedule(5 * sim::kTicksPerMs,
                [&] { sys.mux(7).crashActivity(b_id); });

    runAndCheck();
    EXPECT_EQ(sys.controllerOf(3).activitiesReaped(), 1u);
    // A's source cap survives with no dangling share record.
    Capability *src =
        sys.capsOf(0).tableOf(a->act->id()).get(storage.sel);
    ASSERT_NE(src, nullptr);
    EXPECT_TRUE(src->remoteChildren.empty());
    // B's table is gone on shard 3.
    EXPECT_FALSE(sys.capsOf(3).hasTable(b_id));
}

TEST(ShardRaceTest, RevokeRacesInFlightDelegation)
{
    // Crash the delegating activity at staggered points around its
    // cross-shard delegation: before the syscall, mid-flight (the
    // compensating revoke path), and after completion (the reap's
    // one-way revoke path). In every interleaving the peer shard must
    // end with no trace of the delegated cap and the conservation
    // laws must hold.
    for (sim::Tick us : {2u, 6u, 12u, 25u, 50u, 400u}) {
        sim::EventQueue eq;
        System sys(eq, shardedParams(4));
        sim::Invariants inv;
        registerControllerInvariants(inv, sys);

        auto *a = sys.createApp(0, "a");
        auto *b = sys.createApp(7, "b");
        auto storage = sys.makeMgate(a, 64 << 10, dtu::kPermRW);
        CapSel b_act = sys.grantActCap(a, b);
        dtu::ActId a_id = a->act->id();
        dtu::ActId b_id = b->act->id();

        sys.start(a, [&, storage, b_act](MuxEnv &env) -> sim::Task {
            SyscallReq req;
            req.op = SyscallReq::Op::Delegate;
            req.arg0 = b_act;
            req.arg1 = storage.sel;
            SyscallResp resp;
            // The crash may reset A's endpoints mid-call; a transport
            // error is an acceptable way for this coroutine to die.
            Error err = Error::None;
            co_await env.trySyscall(req, &resp, &err);
            // Linger so late crash points still find A alive (body
            // completion marks the activity dead and a dead activity
            // cannot crash).
            co_await env.thread().compute(5'000'000'000);
        });
        sys.start(b, [&](MuxEnv &env) -> sim::Task {
            co_await env.thread().compute(1'000'000);
        });
        eq.schedule(us * sim::kTicksPerUs,
                    [&] { sys.mux(0).crashActivity(a_id); });

        eq.run();
        inv.runAll(true);
        EXPECT_TRUE(inv.ok())
            << "crash at " << us << "us:\n" << inv.report();

        // The delegated copy must not survive its source's death.
        if (CapTable *bt = sys.capsOf(3).tableIfExists(b_id)) {
            bt->forEachCap([&](Capability &c) {
                EXPECT_FALSE(c.hasRemoteParent)
                    << "crash at " << us
                    << "us left an orphaned delegated cap";
            });
        }
        EXPECT_EQ(sys.controllerOf(0).activitiesReaped(), 1u)
            << "crash at " << us << "us";
    }
}

TEST_F(ShardSystemTest, CreateAndDestroyActivityAcrossShards)
{
    // The control-plane storm primitive: create a controller-side
    // activity record on a remote quadrant, delegate a cap to it,
    // then destroy it — the destroy must reap the remote table.
    auto *a = sys.createApp(0, "a");
    auto storage = sys.makeMgate(a, 64 << 10, dtu::kPermRW);

    bool done = false;
    sys.start(a, [&, storage](MuxEnv &env) -> sim::Task {
        // Create on tile 6 (shard 3).
        SyscallReq req;
        req.op = SyscallReq::Op::CreateAct;
        req.arg0 = 6;
        SyscallResp resp;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        auto act_sel = static_cast<CapSel>(resp.val >> 32);
        auto id = static_cast<dtu::ActId>(resp.val & 0xffff);
        EXPECT_GE(id, kStormActBase);

        req = SyscallReq{};
        req.op = SyscallReq::Op::Delegate;
        req.arg0 = act_sel;
        req.arg1 = storage.sel;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        EXPECT_EQ(selShard(static_cast<CapSel>(resp.val)), 3u);

        req = SyscallReq{};
        req.op = SyscallReq::Op::DestroyAct;
        req.arg0 = act_sel;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        done = true;
    });

    runAndCheck();
    EXPECT_TRUE(done);
    EXPECT_GE(sys.controllerOf(3).activitiesReaped(), 1u);
}

} // namespace
} // namespace m3v::os
