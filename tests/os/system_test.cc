/**
 * @file
 * Full-system integration tests: apps on the assembled M3v platform
 * exchanging messages, calling the controller (system calls), using
 * memory gates against DRAM tiles, and the FS-style capability flow
 * (derive + activate-for + revoke).
 */

#include <gtest/gtest.h>

#include <string>

#include "os/system.h"

namespace m3v::os {
namespace {

using dtu::Error;

Bytes
bytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
str(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

class SystemTest : public ::testing::Test
{
  protected:
    SystemTest() : sys(eq) {}

    sim::EventQueue eq;
    System sys;
};

TEST_F(SystemTest, BuildsPlatform)
{
    EXPECT_EQ(sys.ctrlTile(), 8u);
    EXPECT_EQ(sys.memTileId(0), 9u);
    EXPECT_EQ(sys.memTileId(1), 10u);
    eq.run(); // controller parks waiting for syscalls
}

TEST(SystemMeshTest, DefaultPlatformKeepsPaperMesh)
{
    // The paper-sized config fits the 2x2 star-mesh; autoMesh must
    // leave it untouched.
    sim::EventQueue eq;
    System sys(eq);
    EXPECT_EQ(sys.params().noc.meshCols, 2u);
    EXPECT_EQ(sys.params().noc.meshRows, 2u);
}

TEST(SystemMeshTest, AutoMeshGrowsForLargePlatforms)
{
    // 80 user tiles + controller + 2 memory tiles = 83 > the 2x2
    // capacity: the fabric must grow to forTiles(83) = 5x5 while the
    // timing parameters stay put, and boot must still succeed with
    // every tile routed.
    sim::EventQueue eq;
    SystemParams p;
    p.userTiles = 80;
    // Small PMP windows: 80 tiles must fit the default DRAM.
    p.perTilePmp = 64 << 10;
    System sys(eq, p);
    EXPECT_EQ(sys.params().noc.meshCols, 5u);
    EXPECT_EQ(sys.params().noc.meshRows, 5u);
    EXPECT_EQ(sys.params().noc.freqHz, noc::NocParams{}.freqHz);
    EXPECT_EQ(sys.fabric().validate(), noc::NocConfigError::None);
    // Opposite corners of the grown mesh are several hops apart.
    EXPECT_GT(sys.fabric().hopCount(sys.userTile(0),
                                    sys.memTileId(1)),
              0u);
    eq.run();
}

TEST_F(SystemTest, EchoRpcBetweenApps)
{
    auto *client = sys.createApp(0, "client");
    auto *server = sys.createApp(1, "server");

    auto srv_rep = sys.makeRgate(server);
    auto cli_sg = sys.makeSgate(client, server, srv_rep.ep, 0x42, 4);
    auto cli_rep = sys.makeRgate(client);

    int served = 0;
    sys.start(server, [&, srv_rep](MuxEnv &env) -> sim::Task {
        for (;;) {
            int slot = -1;
            co_await env.recvOn(srv_rep.ep, &slot);
            Bytes req = env.msgAt(srv_rep.ep, slot).payload;
            served++;
            Error err = Error::Aborted;
            co_await env.reply(srv_rep.ep, slot,
                               bytes("re:" + str(req)), &err);
            EXPECT_EQ(err, Error::None);
        }
    });

    std::string got;
    sys.start(client, [&, cli_sg, cli_rep](MuxEnv &env) -> sim::Task {
        Bytes resp;
        Error err = Error::Aborted;
        co_await env.call(cli_sg.ep, cli_rep.ep, bytes("hello"),
                          &resp, &err);
        EXPECT_EQ(err, Error::None);
        got = str(resp);
    });

    eq.run();
    EXPECT_EQ(got, "re:hello");
    EXPECT_EQ(served, 1);
}

TEST_F(SystemTest, NoopSyscallRoundTrip)
{
    auto *app = sys.createApp(0, "app");
    bool done = false;
    sim::Tick t0 = 0, t1 = 0;
    sys.start(app, [&](MuxEnv &env) -> sim::Task {
        t0 = eq.now();
        SyscallResp resp;
        co_await env.syscall(SyscallReq{}, &resp);
        EXPECT_EQ(resp.err, Error::None);
        t1 = eq.now();
        done = true;
    });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(sys.syscalls(), 1u);
    // A syscall is a cross-tile RPC: a handful of microseconds on the
    // FPGA-like platform.
    EXPECT_GT(t1 - t0, sim::kTicksPerUs);
    EXPECT_LT(t1 - t0, 100 * sim::kTicksPerUs);
}

TEST_F(SystemTest, MemGateReadWriteThroughDram)
{
    auto *app = sys.createApp(0, "app");
    auto mg = sys.makeMgate(app, 64 * 1024, dtu::kPermRW);
    bool done = false;
    sys.start(app, [&, mg](MuxEnv &env) -> sim::Task {
        Error err = Error::Aborted;
        co_await env.writeMem(mg.ep, 512, bytes("file contents"),
                              &err);
        EXPECT_EQ(err, Error::None);
        Bytes back;
        co_await env.readMem(mg.ep, 512, 13, &back, &err);
        EXPECT_EQ(err, Error::None);
        EXPECT_EQ(str(back), "file contents");
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(SystemTest, DeriveActivateRevokeFlow)
{
    // The m3fs extent flow: a server owns storage memory, derives a
    // sub-range capability, activates it into the client's EP; the
    // client accesses the extent directly; the server later revokes.
    auto *server = sys.createApp(0, "fs");
    auto *client = sys.createApp(1, "app");
    auto storage = sys.makeMgate(server, 1 << 20, dtu::kPermRW);
    CapSel client_act_cap = sys.grantActCap(server, client);
    dtu::EpId client_mep = sys.allocEp(1);

    // Client-side notification channel so the test can sequence.
    auto cli_rep = sys.makeRgate(client);
    auto srv_sg = sys.makeSgate(server, client, cli_rep.ep, 1, 2);

    bool server_done = false, client_done = false;
    sys.start(server, [&, storage](MuxEnv &env) -> sim::Task {
        // Derive a 4 KiB extent at offset 64 KiB, read-write.
        SyscallResp resp;
        SyscallReq req;
        req.op = SyscallReq::Op::DeriveMem;
        req.arg0 = storage.sel;
        req.arg1 = 64 * 1024;
        req.arg2 = 4096;
        req.arg3 = dtu::kPermRW;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        CapSel extent = static_cast<CapSel>(resp.val);

        // Activate it into the client's endpoint.
        req = SyscallReq{};
        req.op = SyscallReq::Op::ActivateFor;
        req.arg0 = client_act_cap;
        req.arg1 = client_mep;
        req.arg2 = extent;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);

        // Tell the client the extent is ready; wait for its answer.
        Error err = Error::Aborted;
        co_await env.send(srv_sg.ep, bytes("go"), dtu::kInvalidEp,
                          &err);
        EXPECT_EQ(err, Error::None);

        // Give the client time to use the extent, then revoke it.
        co_await env.thread().compute(400'000);
        req = SyscallReq{};
        req.op = SyscallReq::Op::Revoke;
        req.arg0 = extent;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        EXPECT_EQ(resp.val, 1u);
        server_done = true;
    });

    sys.start(client, [&, cli_rep](MuxEnv &env) -> sim::Task {
        int slot = -1;
        co_await env.recvOn(cli_rep.ep, &slot);
        co_await env.ackMsg(cli_rep.ep, slot);

        // Direct access to the granted extent (no server involved).
        Error err = Error::Aborted;
        co_await env.writeMem(client_mep, 0, bytes("extent data"),
                              &err);
        EXPECT_EQ(err, Error::None);
        Bytes back;
        co_await env.readMem(client_mep, 0, 11, &back, &err);
        EXPECT_EQ(err, Error::None);
        EXPECT_EQ(str(back), "extent data");

        // After revocation the endpoint is invalid.
        co_await env.thread().compute(800'000);
        co_await env.readMem(client_mep, 0, 11, &back, &err);
        EXPECT_EQ(err, Error::InvalidEp);
        client_done = true;
    });

    eq.run();
    EXPECT_TRUE(server_done);
    EXPECT_TRUE(client_done);
}

TEST_F(SystemTest, SharedTileAppsMultiplex)
{
    // Two compute-heavy apps on one tile finish in about twice the
    // time one alone takes.
    auto *a = sys.createApp(0, "a");
    auto *b = sys.createApp(0, "b");
    sim::Tick end_a = 0, end_b = 0;
    auto body = [&](sim::Tick *end) {
        return [end, this](MuxEnv &env) -> sim::Task {
            co_await env.thread().compute(2'000'000);
            *end = eq.now();
        };
    };
    sys.start(a, body(&end_a));
    sys.start(b, body(&end_b));
    eq.run();
    // 2M cycles @ 80 MHz = 25 ms each; sharing means both finish
    // around 50 ms.
    sim::Tick last = std::max(end_a, end_b);
    EXPECT_GT(last, 48 * sim::kTicksPerMs);
    EXPECT_LT(last, 56 * sim::kTicksPerMs);
}

TEST_F(SystemTest, ManyAppsManyTilesAllComplete)
{
    int done = 0;
    for (unsigned t = 0; t < 8; t++) {
        for (int k = 0; k < 3; k++) {
            auto *app = sys.createApp(
                t, "app" + std::to_string(t) + "_" +
                       std::to_string(k));
            sys.start(app, [&](MuxEnv &env) -> sim::Task {
                co_await env.thread().compute(50'000);
                co_await env.yield();
                co_await env.thread().compute(50'000);
                done++;
            });
        }
    }
    eq.run();
    EXPECT_EQ(done, 24);
}

} // namespace
} // namespace m3v::os
