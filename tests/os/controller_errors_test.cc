/**
 * @file
 * Error-path tests for the controller's system calls and some
 * remaining simulator primitives (UniqueFunction, deviceMessage).
 */

#include <gtest/gtest.h>

#include <memory>

#include "os/system.h"
#include "sim/unique_function.h"

namespace m3v {
namespace {

using dtu::Error;
using os::Bytes;
using os::SyscallReq;
using os::SyscallResp;

TEST(UniqueFunction, MoveOnlyCaptureAndCall)
{
    auto payload = std::make_unique<int>(41);
    sim::UniqueFunction<int()> fn =
        [p = std::move(payload)]() { return *p + 1; };
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_EQ(fn(), 42);

    sim::UniqueFunction<int()> moved = std::move(fn);
    EXPECT_EQ(moved(), 42);

    sim::UniqueFunction<int()> empty;
    EXPECT_FALSE(static_cast<bool>(empty));
}

TEST(DeviceMessage, StoresAndDropsOnFullRing)
{
    sim::EventQueue eq;
    noc::Noc noc(eq, noc::NocParams{});
    dtu::Dtu d(eq, "d", noc, 0, 100'000'000);
    noc.finalize();
    d.configEp(6, dtu::Endpoint::makeRecv(1, 64, 2));

    EXPECT_TRUE(d.deviceMessage(6, Bytes(8, 1)));
    EXPECT_TRUE(d.deviceMessage(6, Bytes(8, 2)));
    // Ring full: the device drops the frame.
    EXPECT_FALSE(d.deviceMessage(6, Bytes(8, 3)));
    EXPECT_EQ(d.unread(1, 6), 2u);
    // Oversized frames are also rejected.
    EXPECT_FALSE(d.deviceMessage(6, Bytes(100, 4)));

    int slot = d.fetch(1, 6);
    ASSERT_GE(slot, 0);
    d.ack(1, 6, slot);
    eq.run();
    EXPECT_TRUE(d.deviceMessage(6, Bytes(8, 5)));
}

class SyscallErrorTest : public ::testing::Test
{
  protected:
    SyscallErrorTest() : sys(eq)
    {
        app = sys.createApp(0, "app");
    }

    void
    run(std::function<sim::Task(os::MuxEnv &)> body)
    {
        sys.start(app, std::move(body));
        eq.run();
    }

    sim::EventQueue eq;
    os::System sys;
    os::System::App *app = nullptr;
};

TEST_F(SyscallErrorTest, DeriveFromBogusSelectorFails)
{
    bool done = false;
    run([&](os::MuxEnv &env) -> sim::Task {
        SyscallReq req;
        SyscallResp resp;
        req.op = SyscallReq::Op::DeriveMem;
        req.arg0 = 12345; // no such capability
        req.arg1 = 0;
        req.arg2 = 4096;
        req.arg3 = dtu::kPermR;
        co_await env.syscall(req, &resp);
        EXPECT_NE(resp.err, Error::None);
        done = true;
    });
    EXPECT_TRUE(done);
}

TEST_F(SyscallErrorTest, DeriveBeyondParentBoundsFails)
{
    auto mg = sys.makeMgate(app, 8192, dtu::kPermR);
    bool done = false;
    run([&, mg](os::MuxEnv &env) -> sim::Task {
        SyscallReq req;
        SyscallResp resp;
        req.op = SyscallReq::Op::DeriveMem;
        req.arg0 = mg.sel;
        req.arg1 = 4096;
        req.arg2 = 8192; // off + size > parent
        req.arg3 = dtu::kPermR;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::OutOfBounds);

        // Widening permissions is also refused (parent is R-only).
        req.arg1 = 0;
        req.arg2 = 4096;
        req.arg3 = dtu::kPermRW;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::OutOfBounds);
        done = true;
    });
    EXPECT_TRUE(done);
}

TEST_F(SyscallErrorTest, ActivateForWithoutActivityCapFails)
{
    auto mg = sys.makeMgate(app, 4096, dtu::kPermR);
    bool done = false;
    run([&, mg](os::MuxEnv &env) -> sim::Task {
        SyscallReq req;
        SyscallResp resp;
        req.op = SyscallReq::Op::ActivateFor;
        req.arg0 = 999; // not an activity capability
        req.arg1 = 30;
        req.arg2 = mg.sel;
        co_await env.syscall(req, &resp);
        EXPECT_NE(resp.err, Error::None);
        done = true;
    });
    EXPECT_TRUE(done);
}

TEST_F(SyscallErrorTest, RevokeOfUnknownSelectorRemovesNothing)
{
    bool done = false;
    run([&](os::MuxEnv &env) -> sim::Task {
        SyscallReq req;
        SyscallResp resp;
        req.op = SyscallReq::Op::Revoke;
        req.arg0 = 777;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);
        EXPECT_EQ(resp.val, 0u); // nothing revoked
        done = true;
    });
    EXPECT_TRUE(done);
}

TEST_F(SyscallErrorTest, RevokedEndpointFailsClosedOnUse)
{
    auto mg = sys.makeMgate(app, 8192, dtu::kPermRW);
    bool done = false;
    run([&, mg](os::MuxEnv &env) -> sim::Task {
        // Use it once, revoke the subtree root, then use it again.
        dtu::Error err = Error::None;
        co_await env.writeMem(mg.ep, 0, Bytes(64, 1), &err);
        EXPECT_EQ(err, Error::None);

        SyscallReq req;
        SyscallResp resp;
        req.op = SyscallReq::Op::Revoke;
        req.arg0 = mg.sel;
        co_await env.syscall(req, &resp);
        EXPECT_EQ(resp.err, Error::None);

        co_await env.writeMem(mg.ep, 0, Bytes(64, 2), &err);
        EXPECT_EQ(err, Error::InvalidEp);
        done = true;
    });
    EXPECT_TRUE(done);
}

} // namespace
} // namespace m3v
