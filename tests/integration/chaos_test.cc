/**
 * @file
 * Chaos soak test: a full-stack workload (file system + network +
 * compute) runs under a seeded fault plan that drops, corrupts, and
 * delays packets on every NoC link, while a watchdog kill and an
 * injected activity crash exercise the recovery path end to end.
 *
 * The checks: application-visible results are identical to a
 * fault-free run, the same seed reproduces the same run bit for bit,
 * and the injected failures actually happened (drops, retransmits,
 * one watchdog kill, one crash, both reaped by the controller).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "os/system.h"
#include "services/file_client.h"
#include "services/m3fs.h"
#include "services/net.h"
#include "sim/fault.h"
#include "sim/lane.h"

namespace m3v {
namespace {

using os::Bytes;

struct ChaosResult
{
    // Application-visible outcomes (must match the fault-free run).
    bool fsOk = false;
    Bytes fsData;
    unsigned echoes = 0;
    bool hogSurvived = false;
    bool victimSurvived = false;

    // Run fingerprint (must match across same-seed runs).
    sim::Tick endTime = 0;
    std::uint64_t drops = 0;
    std::uint64_t corrupts = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t watchdogKills = 0;
    std::uint64_t crashes = 0;
    std::uint64_t reaped = 0;
};

/**
 * Run the workload. @p with_faults toggles the fault windows; the
 * plan (and thus the reliable wire protocol) is present either way,
 * so the two configurations are timing-comparable.
 */
ChaosResult
runWorkload(std::uint64_t seed, bool with_faults)
{
    ChaosResult res;
    sim::EventQueue eq;
    sim::FaultPlan plan(seed);
    if (with_faults) {
        plan.addDrop("", 0.01);
        plan.addCorrupt("", 0.005);
        plan.addDelay("", 0.01, 200);
    }

    os::SystemParams params;
    params.userTiles = 4;
    params.dram.capacityBytes = 128 << 20;
    params.noc.faults = &plan;
    params.mux.watchdogSlices = 3;
    os::System sys(eq, params);

    services::M3fs fs(sys, 0);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Echo);
    nic.connect(&host);
    host.connect(&nic);
    services::NetService net(sys, 1, nic);

    // FS worker on tile 2: write a file, read it back.
    auto *fs_app = sys.createApp(2, "fsworker");
    auto fs_client = fs.addClient(fs_app);
    sys.start(fs_app, [&, fs_client](os::MuxEnv &env) -> sim::Task {
        services::FileSession f(env, fs_client);
        dtu::Error err = dtu::Error::None;
        co_await f.open("/chaos",
                        services::kOpenW | services::kOpenCreate,
                        &err);
        if (err != dtu::Error::None)
            co_return;
        Bytes data(1024);
        for (std::size_t i = 0; i < data.size(); i++)
            data[i] = static_cast<std::uint8_t>(i * 7 + 1);
        for (int i = 0; i < 6; i++) {
            co_await f.write(data, &err);
            if (err != dtu::Error::None)
                co_return;
        }
        co_await f.close(&err);

        services::FileSession r(env, fs_client, 1);
        co_await r.open("/chaos", services::kOpenR, &err);
        Bytes back;
        for (;;) {
            Bytes chunk;
            co_await r.read(1024, &chunk, &err);
            if (err != dtu::Error::None || chunk.empty())
                break;
            back.insert(back.end(), chunk.begin(), chunk.end());
        }
        co_await r.close(&err);
        res.fsOk = err == dtu::Error::None;
        res.fsData = std::move(back);
    });

    // A hog on the same tile: computes "forever" without a single
    // TMCall, so the watchdog kills it after three full slices.
    auto *hog = sys.createApp(2, "hog");
    sys.start(hog, [&](os::MuxEnv &env) -> sim::Task {
        co_await env.thread().compute(2'000'000'000);
        res.hogSurvived = true;
    });

    // UDP worker on tile 3: strict ping-pong echoes.
    auto *udp_app = sys.createApp(3, "udpworker");
    auto wiring = net.addClient(udp_app);
    sys.start(udp_app, [&, wiring](os::MuxEnv &env) -> sim::Task {
        services::UdpSocket sock(env, wiring);
        dtu::Error err = dtu::Error::None;
        co_await sock.create(7777, &err);
        if (err != dtu::Error::None)
            co_return;
        for (int i = 0; i < 5; i++) {
            Bytes msg(8, static_cast<std::uint8_t>(i + 1));
            co_await sock.sendTo(0x0a000001, 9, msg, &err);
            if (err != dtu::Error::None)
                co_return;
            Bytes back;
            co_await sock.recv(&back, &err);
            if (back != msg)
                co_return;
            res.echoes++;
        }
    });

    // A well-behaved victim on tile 3 that we crash mid-run: its
    // endpoints, capabilities, and credits must be reaped without
    // wedging the UDP worker next to it.
    auto *victim = sys.createApp(3, "victim");
    sys.start(victim, [&](os::MuxEnv &env) -> sim::Task {
        for (int i = 0; i < 1'000'000; i++) {
            co_await env.thread().compute(50'000);
            co_await env.yield();
        }
        res.victimSurvived = true;
    });
    eq.schedule(2 * sim::kTicksPerMs, [&]() {
        sys.mux(3).crashActivity(victim->act->id());
    });

    fs.startService();
    net.startService();
    eq.run();

    res.endTime = eq.now();
    res.drops = plan.drops().value();
    res.corrupts = plan.corrupts().value();
    for (unsigned i = 0; i < params.userTiles; i++) {
        res.retransmits += sys.vdtu(i).retransmits();
        res.timeouts += sys.vdtu(i).timeouts();
    }
    res.watchdogKills = sys.mux(2).watchdogKills();
    res.crashes = sys.mux(3).crashes();
    res.reaped = sys.controller().activitiesReaped();
    return res;
}

TEST(ChaosTest, FaultyRunMatchesFaultFreeResults)
{
    ChaosResult clean = runWorkload(42, false);
    ChaosResult chaos = runWorkload(42, true);

    // The fault-free run sanity-checks the workload itself.
    ASSERT_TRUE(clean.fsOk);
    ASSERT_EQ(clean.fsData.size(), 6u * 1024);
    ASSERT_EQ(clean.echoes, 5u);
    EXPECT_EQ(clean.drops, 0u);
    EXPECT_EQ(clean.retransmits, 0u);

    // Under faults, every application-visible result is unchanged.
    EXPECT_TRUE(chaos.fsOk);
    EXPECT_EQ(chaos.fsData, clean.fsData);
    EXPECT_EQ(chaos.echoes, clean.echoes);

    // ...and the faults really happened and were recovered from.
    EXPECT_GT(chaos.drops, 0u);
    EXPECT_GT(chaos.retransmits, 0u);
    EXPECT_EQ(chaos.timeouts, 0u);

    // Both runs killed the hog via the watchdog and crashed the
    // victim; the controller reaped both.
    for (const ChaosResult *r : {&clean, &chaos}) {
        EXPECT_FALSE(r->hogSurvived);
        EXPECT_FALSE(r->victimSurvived);
        EXPECT_EQ(r->watchdogKills, 1u);
        EXPECT_EQ(r->crashes, 1u);
        EXPECT_EQ(r->reaped, 2u);
    }
}

TEST(ChaosTest, ParallelCellsReproduceInlineRuns)
{
    // The --jobs cell runner executes whole chaos workloads on worker
    // threads. Each cell is self-contained (own EventQueue, own
    // FaultPlan), so four concurrent runs must fingerprint exactly
    // like the same four run inline.
    const std::uint64_t seeds[] = {7, 1234, 4242, 9001};
    std::vector<ChaosResult> inline_runs;
    for (std::uint64_t s : seeds)
        inline_runs.push_back(runWorkload(s, true));

    std::vector<ChaosResult> parallel_runs(4);
    std::vector<sim::UniqueFunction<void()>> cells;
    for (std::size_t i = 0; i < 4; i++) {
        std::uint64_t s = seeds[i];
        cells.push_back([&parallel_runs, i, s]() {
            parallel_runs[i] = runWorkload(s, true);
        });
    }
    sim::runCells(4, std::move(cells));

    for (std::size_t i = 0; i < 4; i++) {
        const ChaosResult &a = inline_runs[i];
        const ChaosResult &b = parallel_runs[i];
        EXPECT_EQ(a.endTime, b.endTime) << "seed " << seeds[i];
        EXPECT_EQ(a.drops, b.drops);
        EXPECT_EQ(a.corrupts, b.corrupts);
        EXPECT_EQ(a.retransmits, b.retransmits);
        EXPECT_EQ(a.fsData, b.fsData);
        EXPECT_EQ(a.echoes, b.echoes);
        EXPECT_EQ(a.watchdogKills, b.watchdogKills);
        EXPECT_EQ(a.crashes, b.crashes);
        EXPECT_EQ(a.reaped, b.reaped);
    }
}

TEST(ChaosTest, SameSeedReproducesBitForBit)
{
    ChaosResult a = runWorkload(1234, true);
    ChaosResult b = runWorkload(1234, true);
    EXPECT_EQ(a.endTime, b.endTime);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.corrupts, b.corrupts);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.fsData, b.fsData);
    EXPECT_EQ(a.echoes, b.echoes);

    ChaosResult c = runWorkload(99, true);
    // A different seed must inject a different fault sequence (the
    // run length is the most sensitive fingerprint).
    EXPECT_NE(a.endTime, c.endTime);
}

} // namespace
} // namespace m3v
