/**
 * @file
 * Overload-resilience regression tests.
 *
 * 1. DTU retransmission exhaustion under a total drop burst surfaces
 *    to file_client / net callers as a *typed* Error::Timeout: the
 *    file client retries it (idempotent ops) within its budget and
 *    then reports it; the UDP client surfaces it without re-sending
 *    (datagram semantics). Once the burst lifts, the same sessions
 *    recover without reconstruction.
 *
 * 2. Reaping an activity that has in-flight retransmission state:
 *    the victim is crashed mid-retx, the controller must reclaim its
 *    credits, and the DTU invariants (credit conservation, engine
 *    quiescence) must hold at the end of the run — nothing the dead
 *    activity had in flight may leak.
 *
 * 3. Reply correlation: the late reply of a timed-out callTimed()
 *    that arrives *after* the next call's pre-send drain must not be
 *    misattributed to that next call — the per-call nonce makes the
 *    poll loop ack-and-discard it as a stale drop.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dtu/dtu.h"
#include "os/system.h"
#include "services/file_client.h"
#include "services/m3fs.h"
#include "services/net.h"
#include "sim/fault.h"
#include "sim/invariants.h"
#include "sim/overload.h"

namespace m3v {
namespace {

using dtu::Error;
using os::Bytes;

/** Exact sleep to an absolute tick (one scheduled wake). */
sim::Task
sleepUntil(sim::EventQueue &eq, os::MuxEnv &env, sim::Tick at)
{
    tile::Thread &t = env.thread();
    t.clearWake();
    eq.scheduleAt(at, [&t]() { t.wake(); });
    co_await t.externalWait();
}

TEST(OverloadRecoveryTest, RetxExhaustionSurfacesTypedTimeout)
{
    sim::EventQueue eq;
    sim::FaultPlan plan(0xBEEF);
    // Total loss of everything the client tile injects during the
    // burst: every send attempt retransmits to exhaustion.
    const sim::Tick kBurstStart = 1 * sim::kTicksPerMs;
    const sim::Tick kBurstEnd = 20 * sim::kTicksPerMs;
    plan.addDrop("noc.tile1.inj", 1.0, kBurstStart, kBurstEnd);

    os::SystemParams params;
    params.userTiles = 3;
    params.noc.faults = &plan;
    // A full default retx exhaustion (8 attempts, exponential
    // backoff from 2000 cycles) spans several milliseconds; shrink
    // the budget so client-side retries of the typed timeout also
    // exhaust well inside the drop window.
    params.dtuTiming.retxTimeoutCycles = 500;
    params.dtuTiming.retxMaxAttempts = 4;
    os::System sys(eq, params);

    services::M3fs fs(sys, 0);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Sink);
    nic.connect(&host);
    host.connect(&nic);
    services::NetService net(sys, 2, nic);

    auto *app = sys.createApp(1, "client");
    auto fsc = fs.addClient(app);
    auto netc = net.addClient(app);

    Error preErr = Error::Aborted;
    Error burstFsErr = Error::None;
    Error burstNetErr = Error::None;
    Error postErr = Error::Aborted;
    std::uint64_t fsRetries = 0, netRetries = 0, budgetSpent = 0;

    sim::OverloadGuard guard(0x7777);
    sys.start(app, [&, fsc, netc](os::MuxEnv &env) -> sim::Task {
        services::FileSession f(env, fsc, 0, &guard);
        services::UdpSocket sock(env, netc);
        services::FsResp resp;
        Error err = Error::None;

        co_await sock.create(4242, &err);
        co_await f.stat("/", &resp);
        preErr = resp.err;

        // Inside the drop burst: the fs RPC is idempotent, so the
        // client retries the typed timeout until its budget/attempts
        // run out, then surfaces it.
        co_await sleepUntil(eq, env, kBurstStart + 50 * sim::kTicksPerUs);
        co_await f.stat("/", &resp);
        burstFsErr = resp.err;
        fsRetries = f.rpcRetries();
        budgetSpent = guard.budget().spent();

        // A UDP send is not idempotent at the datagram level: the
        // typed timeout surfaces without a single re-send.
        co_await sock.sendTo(0x0a000001, 9, Bytes(32, 0x42),
                             &burstNetErr);
        netRetries = sock.rpcRetries();

        // After the burst lifts, the same session recovers.
        co_await sleepUntil(eq, env, kBurstEnd + sim::kTicksPerMs);
        co_await f.stat("/", &resp);
        postErr = resp.err;
    });

    fs.startService();
    net.startService();
    eq.run();

    EXPECT_EQ(preErr, Error::None);
    EXPECT_EQ(burstFsErr, Error::Timeout);
    EXPECT_GT(fsRetries, 0u);
    EXPECT_GT(budgetSpent, 0u);
    EXPECT_EQ(burstNetErr, Error::Timeout);
    EXPECT_EQ(netRetries, 0u);
    EXPECT_EQ(postErr, Error::None);

    // The exhaustion really came from the wire protocol.
    EXPECT_GT(sys.vdtu(1).retransmits(), 0u);
    EXPECT_GT(sys.vdtu(1).timeouts(), 0u);
    EXPECT_GT(plan.drops().value(), 0u);
}

TEST(OverloadRecoveryTest, LateReplyIsNotMisattributedToNextCall)
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 3;
    os::System sys(eq, params);

    // Client deadline for the first call; the server holds the first
    // reply until kReplyAt, well past the timeout, so it lands in the
    // middle of the *second* call's poll loop — after that call's
    // pre-send drain.
    const sim::Tick kDeadline1 = 200 * sim::kTicksPerUs;
    const sim::Tick kReplyAt = 2 * sim::kTicksPerMs;
    const sim::Tick kDeadline2 = 20 * sim::kTicksPerMs;

    auto *server = sys.createApp(2, "server");
    auto ring = sys.makeRgate(server, 128, 4);
    auto *client = sys.createApp(1, "client");
    auto reply = sys.makeRgate(client, 128, 4);
    // Two credits: the first call's credit only returns with its
    // (delayed) reply, and the second call must still be sendable.
    auto sgate = sys.makeSgate(client, server, ring.ep, 7, 2);

    sys.start(server, [&](os::MuxEnv &env) -> sim::Task {
        Error rerr = Error::Aborted;
        int slot = -1;
        // First request: sit on it until long after the client gave
        // up and re-sent, then answer it.
        co_await env.recvOn(ring.ep, &slot);
        co_await sleepUntil(eq, env, kReplyAt);
        co_await env.reply(ring.ep, slot, Bytes(1, 0xAA), &rerr);
        // Second request: answer immediately.
        co_await env.recvOn(ring.ep, &slot);
        co_await env.reply(ring.ep, slot, Bytes(1, 0xBB), &rerr);
    });

    Error firstErr = Error::None;
    Error secondErr = Error::Aborted;
    Bytes secondResp;
    std::uint64_t staleDrops = 0;
    sys.start(client, [&, sgate](os::MuxEnv &env) -> sim::Task {
        Bytes resp;
        Error err = Error::Aborted;
        co_await env.callTimed(sgate.ep, reply.ep, Bytes(1, 0x01),
                               &resp, &err, kDeadline1);
        firstErr = err;
        co_await env.callTimed(sgate.ep, reply.ep, Bytes(1, 0x02),
                               &secondResp, &secondErr, kDeadline2);
        staleDrops = env.staleRepliesDropped();
    });

    eq.run();

    EXPECT_EQ(firstErr, Error::Timeout);
    // The second call must see the *second* reply, not the first
    // call's late one — which must be counted as a stale drop.
    EXPECT_EQ(secondErr, Error::None);
    ASSERT_EQ(secondResp.size(), 1u);
    EXPECT_EQ(secondResp[0], 0xBB);
    EXPECT_EQ(staleDrops, 1u);
}

TEST(OverloadRecoveryTest, ReapWithInflightRetxReclaimsCredits)
{
    sim::EventQueue eq;
    sim::FaultPlan plan(0xD00D);
    // Short total-loss window on the victim's injection port: long
    // enough that the victim is mid-retransmission when crashed,
    // short enough that the reap sidecalls (after the window) flow.
    const sim::Tick kDropStart = 1 * sim::kTicksPerMs;
    const sim::Tick kDropEnd = kDropStart + 400 * sim::kTicksPerUs;
    const sim::Tick kCrashAt = kDropStart + 200 * sim::kTicksPerUs;
    plan.addDrop("noc.tile1.inj", 1.0, kDropStart, kDropEnd);

    os::SystemParams params;
    params.userTiles = 3;
    params.noc.faults = &plan;
    os::System sys(eq, params);

    services::M3fs fs(sys, 0);

    // The victim: issues an RPC into the drop window so its DTU holds
    // live retransmission state, then is crashed mid-retx. It also
    // owns a receive ring holding an unread message whose sender paid
    // a credit — the reap must return that credit.
    auto *victim = sys.createApp(1, "victim");
    auto vc = fs.addClient(victim);
    auto vring = sys.makeRgate(victim, 128, 4);
    bool victimReturned = false;
    sys.start(victim, [&, vc](os::MuxEnv &env) -> sim::Task {
        services::FileSession f(env, vc);
        services::FsResp resp;
        co_await sleepUntil(eq, env,
                            kDropStart + 20 * sim::kTicksPerUs);
        co_await f.stat("/", &resp);
        victimReturned = true; // must never run: killed mid-RPC
    });
    unsigned parkedPreCrash = 0;
    eq.scheduleAt(kCrashAt, [&]() {
        const dtu::Endpoint &rep = sys.vdtu(1).ep(vring.ep);
        if (rep.kind == dtu::EpKind::Receive)
            for (const auto &rs : rep.recv.slots)
                if (rs.occupied &&
                    rs.msg.creditEp != dtu::kInvalidEp)
                    parkedPreCrash++;
        sys.mux(1).crashActivity(victim->act->id());
    });

    // A bystander sharing the fs service: parks a message in the
    // victim's ring pre-crash (its credit must come back via the
    // reap sweep) and must keep completing fs RPCs after the reap.
    auto *bystander = sys.createApp(2, "bystander");
    auto bc = fs.addClient(bystander);
    auto bsg = sys.makeSgate(bystander, victim, vring.ep, 1, 2);
    unsigned bystanderOk = 0;
    Error serr = Error::Aborted;
    sys.start(bystander, [&, bc, bsg](os::MuxEnv &env) -> sim::Task {
        services::FileSession f(env, bc);
        co_await env.send(bsg.ep, Bytes(16, 0x33), dtu::kInvalidEp,
                          &serr);
        for (int i = 0; i < 5; i++) {
            co_await sleepUntil(eq, env,
                                (i + 1) * 2 * sim::kTicksPerMs);
            services::FsResp resp;
            co_await f.stat("/", &resp);
            if (resp.err == Error::None)
                bystanderOk++;
        }
    });

    sim::Invariants inv;
    std::vector<const dtu::Dtu *> dtus;
    for (unsigned i = 0; i < params.userTiles; i++)
        dtus.push_back(&sys.vdtu(i));
    dtus.push_back(&sys.controller().env().dtu());
    dtu::registerDtuInvariants(inv, std::move(dtus));
    inv.attach(eq, 64);

    fs.startService();
    eq.run();
    inv.runAll(true);

    EXPECT_FALSE(victimReturned);
    EXPECT_EQ(serr, Error::None);
    EXPECT_EQ(parkedPreCrash, 1u);
    EXPECT_EQ(bystanderOk, 5u);
    EXPECT_EQ(sys.controller().activitiesReaped(), 1u);
    // The parked message's credit comes back through the crash-time
    // receive-ring sweep on the victim's own tile (TileMux resets the
    // activity's vDTU state before the controller's reap sidecall, so
    // the controller-side sweep finds the rings already drained).
    EXPECT_GT(sys.vdtu(1).creditsReclaimed() +
                  sys.controller().creditsReclaimed(),
              0u);
    // The victim really was mid-retransmission when it died.
    EXPECT_GT(sys.vdtu(1).retransmits(), 0u);
    // Nothing it had in flight may violate credit conservation or
    // leave an engine non-quiescent.
    EXPECT_TRUE(inv.ok()) << inv.violationCount() << " violations";
    EXPECT_EQ(inv.violationCount(), 0u);
}

} // namespace
} // namespace m3v
