/**
 * @file
 * Full-stack integration tests: complete scenarios across every
 * layer (NoC, vDTU, TileMux, controller, services, workloads), plus
 * determinism guarantees the whole evaluation relies on.
 */

#include <gtest/gtest.h>

#include <string>

#include "linuxref/kernel.h"
#include "m3x/system.h"
#include "os/system.h"
#include "services/m3fs.h"
#include "services/net.h"
#include "services/pager.h"
#include "workloads/kv.h"
#include "workloads/trace.h"
#include "workloads/vfs_m3v.h"
#include "workloads/ycsb.h"

namespace m3v {
namespace {

using os::Bytes;

/** One self-contained mini cloud-service run; returns the end time. */
sim::Tick
cloudScenario(bool shared, unsigned *fs_requests = nullptr,
              std::uint64_t *switches = nullptr)
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 4;
    params.dram.capacityBytes = 256 << 20;
    os::System sys(eq, params);

    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Sink);
    nic.connect(&host);
    host.connect(&nic);

    services::M3fsParams fsp;
    fsp.storageBytes = 32 << 20;
    services::M3fs fs(sys, shared ? 0 : 1, fsp);
    services::NetService net(sys, 0, nic);
    services::PagerService pager(sys, shared ? 0 : 2);
    auto *db = sys.createApp(shared ? 0 : 3, "db");
    auto fs_client = fs.addClient(db);
    auto net_client = net.addClient(db);
    auto pager_client = pager.addClient(db);
    fs.startService();
    net.startService();
    pager.startService();

    workloads::YcsbConfig cfg;
    cfg.records = 60;
    cfg.operations = 40;
    auto w = workloads::ycsbGenerate(cfg,
                                     workloads::YcsbMix::mixed());

    bool done = false;
    unsigned hits = 0;
    sys.start(db, [&, fs_client, net_client,
                   pager_client](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr heap = 0;
        dtu::Error err = dtu::Error::None;
        co_await services::pagerAllocMap(env, pager_client, 4, &heap,
                                         &err);
        workloads::M3vVfs vfs(env, fs_client);
        services::UdpSocket sock(env, net_client);
        co_await sock.create(7000, &err);

        workloads::KvStore kv(vfs);
        co_await kv.open();
        for (const auto &op : w.load)
            co_await kv.put(op.key, op.value);
        for (const auto &op : w.run) {
            switch (op.kind) {
              case workloads::YcsbOp::Kind::Read: {
                std::string v;
                bool found = false;
                co_await kv.get(op.key, &v, &found);
                hits += found;
                break;
              }
              case workloads::YcsbOp::Kind::Insert:
              case workloads::YcsbOp::Kind::Update:
                co_await kv.put(op.key, op.value);
                break;
              case workloads::YcsbOp::Kind::Scan: {
                std::vector<std::pair<std::string, std::string>> o;
                co_await kv.scan(op.key, op.scanLen, &o);
                break;
              }
            }
            co_await sock.sendTo(0x0a000001, 9,
                                 Bytes(op.key.begin(),
                                       op.key.end()),
                                 &err);
        }
        co_await kv.close();
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_GT(hits, 0u);
    EXPECT_EQ(host.framesReceived(), 40u);
    if (fs_requests)
        *fs_requests = static_cast<unsigned>(fs.requests());
    if (switches)
        *switches = sys.mux(0).ctxSwitches();
    return eq.now();
}

TEST(FullStack, CloudScenarioSharedAndIsolated)
{
    std::uint64_t shared_switches = 0, iso_switches = 0;
    sim::Tick shared_t = cloudScenario(true, nullptr,
                                       &shared_switches);
    sim::Tick iso_t = cloudScenario(false, nullptr, &iso_switches);
    // Sharing a tile costs context switches and time.
    EXPECT_GT(shared_switches, iso_switches);
    EXPECT_GT(shared_t, iso_t);
}

TEST(FullStack, SimulationIsDeterministic)
{
    unsigned fs1 = 0, fs2 = 0;
    sim::Tick t1 = cloudScenario(true, &fs1);
    sim::Tick t2 = cloudScenario(true, &fs2);
    // Bit-for-bit repeatability: identical end time and counters.
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(fs1, fs2);
}

TEST(FullStack, TracePlayerDeterministic)
{
    auto run = []() {
        sim::EventQueue eq;
        os::System sys(eq);
        services::M3fs fs(sys, 0);
        auto *player = sys.createApp(0, "find");
        auto client = fs.addClient(player);
        fs.startService();
        workloads::Trace trace = workloads::makeFindTrace(4, 8);
        workloads::TraceStats stats;
        sys.start(player,
                  [&, client](os::MuxEnv &env) -> sim::Task {
                      workloads::M3vVfs vfs(env, client);
                      co_await workloads::traceSetup(vfs, trace);
                      co_await workloads::tracePlay(vfs, trace,
                                                    &stats);
                  });
        eq.run();
        return std::make_pair(eq.now(), stats.fsOps);
    };
    auto [t1, ops1] = run();
    auto [t2, ops2] = run();
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(ops1, ops2);
    EXPECT_GT(ops1, 40u);
}

TEST(FullStack, M3xAndM3vAgreeOnWorkSemantics)
{
    // The same ping-pong protocol completes with identical message
    // counts on both systems (only timing differs).
    int m3v_served = 0;
    {
        sim::EventQueue eq;
        os::SystemParams params;
        params.userTiles = 2;
        os::System sys(eq, params);
        auto *client = sys.createApp(0, "c");
        auto *server = sys.createApp(0, "s");
        auto rep = sys.makeRgate(server);
        auto sg = sys.makeSgate(client, server, rep.ep, 1, 4);
        auto crep = sys.makeRgate(client);
        sys.start(server, [&, rep](os::MuxEnv &env) -> sim::Task {
            for (;;) {
                int slot = -1;
                co_await env.recvOn(rep.ep, &slot);
                m3v_served++;
                dtu::Error err = dtu::Error::None;
                co_await env.reply(rep.ep, slot, Bytes{}, &err);
            }
        });
        sys.start(client, [&, sg, crep](os::MuxEnv &env) -> sim::Task {
            for (int i = 0; i < 7; i++) {
                Bytes resp;
                dtu::Error err = dtu::Error::None;
                co_await env.call(sg.ep, crep.ep, Bytes{}, &resp,
                                  &err);
            }
        });
        eq.run();
    }

    int m3x_served = 0;
    {
        sim::EventQueue eq;
        m3x::M3xParams params;
        params.userTiles = 2;
        m3x::M3xSystem sys(eq, params);
        auto *client = sys.createAct(0, "c");
        auto *server = sys.createAct(0, "s");
        m3x::M3xChan chan = sys.makeChannel(server);
        dtu::EpId sep = sys.addSender(chan, client);
        sys.start(server, sim::invoke([&]() -> sim::Task {
            for (;;) {
                Bytes req;
                m3x::MsgHdr rt;
                co_await sys.serveNext(*server, chan, &req, &rt);
                m3x_served++;
                co_await sys.replyTo(*server, rt, Bytes{});
            }
        }));
        sys.start(client, sim::invoke([&, sep]() -> sim::Task {
            for (int i = 0; i < 7; i++) {
                Bytes resp;
                co_await sys.rpc(*client, chan, sep, Bytes{}, &resp);
            }
            co_await sys.exit(*client);
        }));
        eq.run();
    }
    EXPECT_EQ(m3v_served, 7);
    EXPECT_EQ(m3x_served, 7);
}

TEST(FullStack, ControllerSurvivesConcurrentSyscallBursts)
{
    sim::EventQueue eq;
    os::System sys(eq);
    int done = 0;
    for (unsigned t = 0; t < 8; t++) {
        auto *app = sys.createApp(t, "burst" + std::to_string(t));
        sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
            for (int i = 0; i < 25; i++) {
                os::SyscallResp resp;
                co_await env.syscall(os::SyscallReq{}, &resp);
                EXPECT_EQ(resp.err, dtu::Error::None);
            }
            done++;
        });
    }
    eq.run();
    EXPECT_EQ(done, 8);
    EXPECT_EQ(sys.syscalls(), 200u);
}

} // namespace
} // namespace m3v
