/**
 * @file
 * Robustness and state-preservation tests: activity kill, concurrent
 * file-system clients, M3x endpoint-state preservation across remote
 * switches (unread messages survive), multi-socket networking, and
 * message-size sweeps through the full stack.
 */

#include <gtest/gtest.h>

#include <string>

#include "m3x/system.h"
#include "os/system.h"
#include "services/file_client.h"
#include "services/m3fs.h"
#include "services/net.h"

namespace m3v {
namespace {

using os::Bytes;

TEST(Robustness, KillActivityFreesTheCore)
{
    sim::EventQueue eq;
    os::System sys(eq);
    auto *victim = sys.createApp(0, "victim");
    auto *other = sys.createApp(0, "other");

    bool victim_finished = false, other_finished = false;
    bool killed_hook = false;
    victim->act->onExit = [&]() { killed_hook = true; };
    sys.start(victim, [&](os::MuxEnv &env) -> sim::Task {
        co_await env.thread().compute(100'000'000); // "forever"
        victim_finished = true;
    });
    sys.start(other, [&](os::MuxEnv &env) -> sim::Task {
        co_await env.thread().compute(200'000);
        other_finished = true;
    });

    // Kill the hog after 1 ms (the controller's kill sidecall path
    // is exercised at the TileMux level).
    eq.schedule(sim::kTicksPerMs, [&]() {
        sys.mux(0).killActivity(victim->act->id());
    });
    eq.run();
    EXPECT_FALSE(victim_finished);
    EXPECT_TRUE(other_finished);
    EXPECT_TRUE(killed_hook);
    EXPECT_EQ(victim->act->state(), core::Activity::State::Dead);
}

TEST(Robustness, ConcurrentFsClientsStayIsolated)
{
    sim::EventQueue eq;
    os::SystemParams params;
    params.userTiles = 4;
    params.dram.capacityBytes = 128 << 20;
    os::System sys(eq, params);
    services::M3fs fs(sys, 0);
    int done = 0;
    for (unsigned t = 1; t <= 3; t++) {
        auto *app = sys.createApp(t, "app" + std::to_string(t));
        auto client = fs.addClient(app);
        sys.start(app, [&, client, t](os::MuxEnv &env) -> sim::Task {
            services::FileSession f(env, client);
            dtu::Error err = dtu::Error::None;
            std::string path = "/file" + std::to_string(t);
            co_await f.open(path,
                            services::kOpenW | services::kOpenCreate,
                            &err);
            EXPECT_EQ(err, dtu::Error::None);
            // Each client writes its own pattern.
            Bytes data(2048, static_cast<std::uint8_t>(t));
            for (int i = 0; i < 8; i++)
                co_await f.write(data, &err);
            co_await f.close(&err);

            services::FileSession r(env, client, 1);
            co_await r.open(path, services::kOpenR, &err);
            EXPECT_EQ(r.size(), 8u * 2048);
            Bytes back;
            co_await r.read(2048, &back, &err);
            bool ok = back.size() == 2048;
            for (std::size_t i = 0; ok && i < back.size(); i++)
                ok = back[i] == t;
            EXPECT_TRUE(ok) << "client " << t
                            << " read foreign data";
            co_await r.close(&err);
            done++;
        });
    }
    fs.startService();
    eq.run();
    EXPECT_EQ(done, 3);
}

TEST(Robustness, M3xUnreadMessagesSurviveRemoteSwitches)
{
    // Endpoint state (including receive buffers with unread
    // messages) is saved and restored by the kernel: a message that
    // arrives just before the recipient is switched out must still
    // be there when it is switched back in.
    sim::EventQueue eq;
    m3x::M3xParams params;
    params.userTiles = 2;
    m3x::M3xSystem sys(eq, params);

    auto *a = sys.createAct(0, "a");
    auto *b = sys.createAct(0, "b");
    auto *remote = sys.createAct(1, "remote");
    m3x::M3xChan a_chan = sys.makeChannel(a);
    m3x::M3xChan b_chan = sys.makeChannel(b);
    dtu::EpId to_a = sys.addSender(a_chan, remote);
    dtu::EpId to_b = sys.addSender(b_chan, remote);

    int a_got = 0, b_got = 0;
    auto server = [&](m3x::M3xAct *self, m3x::M3xChan chan,
                      int *got) {
        return sim::invoke([&sys, self, chan, got]() -> sim::Task {
            for (int i = 0; i < 3; i++) {
                Bytes req;
                m3x::MsgHdr rt;
                co_await sys.serveNext(*self, chan, &req, &rt);
                (*got)++;
                co_await sys.replyTo(*self, rt, Bytes(1, 0x5a));
            }
            co_await sys.exit(*self);
        });
    };
    sys.start(a, server(a, a_chan, &a_got));
    sys.start(b, server(b, b_chan, &b_got));
    sys.start(remote, sim::invoke([&]() -> sim::Task {
        // Alternate requests to a and b: each delivery forces the
        // kernel to switch the shared tile, saving/restoring the
        // other activity's endpoint state (with its buffers).
        for (int i = 0; i < 3; i++) {
            Bytes resp;
            co_await sys.rpc(*remote, a_chan, to_a, Bytes(1, 1),
                             &resp);
            co_await sys.rpc(*remote, b_chan, to_b, Bytes(1, 2),
                             &resp);
        }
        co_await sys.exit(*remote);
    }));
    eq.run();
    EXPECT_EQ(a_got, 3);
    EXPECT_EQ(b_got, 3);
    EXPECT_GE(sys.switches(), 5u);
}

TEST(Robustness, MultipleUdpSocketsDemultiplex)
{
    sim::EventQueue eq;
    os::System sys(eq);
    services::Nic nic(eq, "nic");
    services::ExtHost host(eq, "host", services::ExtHost::Mode::Echo);
    nic.connect(&host);
    host.connect(&nic);
    services::NetService net(sys, 0, nic);

    int done = 0;
    for (unsigned t = 1; t <= 2; t++) {
        auto *app = sys.createApp(t, "udp" + std::to_string(t));
        auto wiring = net.addClient(app);
        sys.start(app, [&, wiring, t](os::MuxEnv &env) -> sim::Task {
            services::UdpSocket sock(env, wiring);
            dtu::Error err = dtu::Error::None;
            co_await sock.create(static_cast<std::uint16_t>(
                                     7000 + t),
                                 &err);
            for (int i = 0; i < 5; i++) {
                Bytes msg(4, static_cast<std::uint8_t>(t));
                co_await sock.sendTo(0x0a000001, 9, msg, &err);
                Bytes back;
                co_await sock.recv(&back, &err);
                // Each socket must get its own echoes back.
                EXPECT_EQ(back.size(), 4u);
                EXPECT_EQ(back[0], t);
            }
            done++;
        });
    }
    net.startService();
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(net.rxDropped(), 0u);
}

class MsgSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MsgSizeSweep, RpcPayloadsRoundTripAtAnySize)
{
    std::size_t size = GetParam();
    sim::EventQueue eq;
    os::System sys(eq);
    auto *client = sys.createApp(0, "client");
    auto *server = sys.createApp(1, "server");
    auto rep = sys.makeRgate(server, 2048, 4);
    auto sg = sys.makeSgate(client, server, rep.ep, 1, 2, 2048);
    auto crep = sys.makeRgate(client, 2048, 2);

    sys.start(server, [&, rep](os::MuxEnv &env) -> sim::Task {
        for (;;) {
            int slot = -1;
            co_await env.recvOn(rep.ep, &slot);
            Bytes payload = env.msgAt(rep.ep, slot).payload;
            // Echo reversed.
            std::reverse(payload.begin(), payload.end());
            dtu::Error err = dtu::Error::None;
            co_await env.reply(rep.ep, slot, std::move(payload),
                               &err);
        }
    });
    bool done = false;
    sys.start(client, [&, sg, crep](os::MuxEnv &env) -> sim::Task {
        Bytes msg(size);
        for (std::size_t i = 0; i < size; i++)
            msg[i] = static_cast<std::uint8_t>(i * 13 + 1);
        Bytes resp;
        dtu::Error err = dtu::Error::None;
        co_await env.call(sg.ep, crep.ep, msg, &resp, &err);
        EXPECT_EQ(err, dtu::Error::None);
        std::reverse(resp.begin(), resp.end());
        EXPECT_EQ(resp, msg);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsgSizeSweep,
                         ::testing::Values(0u, 1u, 15u, 64u, 256u,
                                           1024u, 2000u));

} // namespace
} // namespace m3v
