/**
 * @file
 * Tests for the reliable wire protocol the DTUs switch to when the
 * NoC carries a fault plan: sequence numbers, retransmission with
 * exponential backoff, duplicate suppression, corrupt-packet
 * discarding, and timeout surfacing. Also checks the Error enum's
 * name table stays total.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dtu/dtu.h"
#include "dtu/memory_tile.h"
#include "sim/fault.h"

namespace m3v::dtu {
namespace {

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(DtuErrorTest, EveryErrorHasAUniqueName)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < kNumErrors; i++) {
        const char *n = errorName(static_cast<Error>(i));
        ASSERT_NE(n, nullptr);
        EXPECT_NE(std::string(n), "?");
        names.insert(n);
    }
    EXPECT_EQ(names.size(), kNumErrors);
}

class DtuRetxTest : public ::testing::Test
{
  protected:
    static constexpr noc::TileId kTileA = 0;
    static constexpr noc::TileId kTileB = 1;
    static constexpr std::uint64_t kFreq = 100'000'000;

    /** Build two DTUs over a faulty NoC. */
    void
    build(sim::FaultPlan *plan)
    {
        noc::NocParams params;
        params.faults = plan;
        noc = std::make_unique<noc::Noc>(eq, params);
        dtuA = std::make_unique<Dtu>(eq, "dtuA", *noc, kTileA, kFreq);
        dtuB = std::make_unique<Dtu>(eq, "dtuB", *noc, kTileB, kFreq);
        noc->finalize();
        dtuB->configEp(4, Endpoint::makeRecv(0, 256, 8));
        dtuA->configEp(4, Endpoint::makeSend(0, kTileB, 4, 0x77, 4));
    }

    sim::EventQueue eq;
    std::unique_ptr<noc::Noc> noc;
    std::unique_ptr<Dtu> dtuA;
    std::unique_ptr<Dtu> dtuB;
};

TEST_F(DtuRetxTest, FaultPlanEnablesReliableMode)
{
    sim::FaultPlan plan(1);
    build(&plan);
    EXPECT_TRUE(dtuA->reliable());
    EXPECT_TRUE(dtuB->reliable());
}

TEST_F(DtuRetxTest, RetransmissionRecoversFromDroppedRequest)
{
    // Drop everything leaving tile A for 30us: the initial MsgXfer
    // (t=0) and the first retransmission (t=20us) die; the second
    // retransmission (t=60us) gets through.
    sim::FaultPlan plan(2);
    plan.addDrop("noc.tile0.inj", 1.0, 0, 30 * sim::kTicksPerUs);
    build(&plan);

    Error err = Error::Aborted;
    dtuA->cmdSend(0, 4, 0x1000, bytes("ping"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    EXPECT_GT(dtuA->retransmits(), 0u);
    EXPECT_EQ(dtuA->timeouts(), 0u);
    EXPECT_EQ(dtuB->unread(0, 4), 1u); // exactly one copy delivered
    EXPECT_GT(plan.drops().value(), 0u);
}

TEST_F(DtuRetxTest, DroppedAckTriggersDedupNotRedelivery)
{
    // Let the request through but kill B's responses for a while:
    // A keeps retransmitting, B must recognise the duplicates and
    // re-ack without delivering a second copy.
    sim::FaultPlan plan(3);
    plan.addDrop("noc.tile1.inj", 1.0, 0, 30 * sim::kTicksPerUs);
    build(&plan);

    Error err = Error::Aborted;
    dtuA->cmdSend(0, 4, 0x1000, bytes("ping"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    EXPECT_GT(dtuA->retransmits(), 0u);
    EXPECT_GT(dtuB->duplicatesDropped(), 0u);
    EXPECT_EQ(dtuB->unread(0, 4), 1u);
}

TEST_F(DtuRetxTest, CorruptedPacketsAreDiscardedAndResent)
{
    sim::FaultPlan plan(4);
    plan.addCorrupt("noc.tile0.inj", 1.0, 0, 30 * sim::kTicksPerUs);
    build(&plan);

    Error err = Error::Aborted;
    dtuA->cmdSend(0, 4, 0x1000, bytes("ping"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    EXPECT_GT(dtuB->corruptDropped(), 0u);
    EXPECT_GT(dtuA->retransmits(), 0u);
    EXPECT_EQ(dtuB->unread(0, 4), 1u);
}

TEST_F(DtuRetxTest, PersistentLossSurfacesTimeout)
{
    sim::FaultPlan plan(5);
    plan.addDrop("noc.tile0.inj", 1.0); // forever
    build(&plan);

    Error err = Error::None;
    dtuA->cmdSend(0, 4, 0x1000, bytes("ping"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::Timeout);
    EXPECT_EQ(dtuA->timeouts(), 1u);
    EXPECT_EQ(dtuB->unread(0, 4), 0u);
    // 8 transmissions total: the original plus 7 retransmissions.
    EXPECT_EQ(dtuA->retransmits(), 7u);
}

TEST_F(DtuRetxTest, CreditsSurviveALossyAckPath)
{
    // With only one credit, each further send needs the CreditReturn
    // from B's ack to make it back through the lossy link — via the
    // CreditReturn retransmission + CreditAck dedup machinery.
    sim::FaultPlan plan(6);
    plan.addDrop("noc.tile1.inj", 0.5, 0, 200 * sim::kTicksPerUs);
    build(&plan);
    dtuA->configEp(5, Endpoint::makeSend(0, kTileB, 4, 0x77, 1));

    int delivered = 0;
    for (int i = 0; i < 5; i++) {
        Error err = Error::Aborted;
        dtuA->cmdSend(0, 5, 0x1000, bytes("m"), kInvalidEp,
                      [&](Error e) { err = e; });
        eq.run();
        ASSERT_EQ(err, Error::None) << "send " << i;
        int slot = dtuB->fetch(0, 4);
        ASSERT_GE(slot, 0);
        dtuB->ack(0, 4, slot);
        eq.run();
        delivered++;
    }
    EXPECT_EQ(delivered, 5);
}

TEST_F(DtuRetxTest, ReliableMemoryReadsRecover)
{
    sim::FaultPlan plan(7);
    plan.addDrop("noc.tile0.inj", 1.0, 0, 30 * sim::kTicksPerUs);
    noc::NocParams params;
    params.faults = &plan;
    noc = std::make_unique<noc::Noc>(eq, params);
    dtuA = std::make_unique<Dtu>(eq, "dtuA", *noc, kTileA, kFreq);
    auto mem = std::make_unique<MemoryTile>(eq, "mem", *noc, 2);
    noc->finalize();
    PhysAddr base = mem->alloc(64, 64);
    dtuA->configEp(6, Endpoint::makeMem(0, 2, base, 64, kPermRW));

    // The write's MemWriteReq is lost repeatedly during the window;
    // it is idempotent, so retransmitted copies are harmless.
    Error werr = Error::Aborted;
    dtuA->cmdWrite(0, 6, 0, bytes("data"), 0x3000,
                   [&](Error e) { werr = e; });
    eq.run();
    ASSERT_EQ(werr, Error::None);

    Error err = Error::Aborted;
    std::vector<std::uint8_t> out;
    dtuA->cmdRead(0, 6, 0, 4, 0x3000,
                  [&](Error e, std::vector<std::uint8_t> d) {
                      err = e;
                      out = std::move(d);
                  });
    eq.run();
    EXPECT_EQ(err, Error::None);
    EXPECT_EQ(std::string(out.begin(), out.end()), "data");
    EXPECT_GT(dtuA->retransmits(), 0u);
}

} // namespace
} // namespace m3v::dtu
