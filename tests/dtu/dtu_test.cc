/**
 * @file
 * Unit tests for the base DTU: message passing between endpoints,
 * credits, replies, nacks, memory endpoints against a memory tile,
 * and the external (controller) interface.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dtu/dtu.h"
#include "dtu/memory_tile.h"

namespace m3v::dtu {
namespace {

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string
str(const std::vector<std::uint8_t> &v)
{
    return std::string(v.begin(), v.end());
}

class DtuTest : public ::testing::Test
{
  protected:
    static constexpr noc::TileId kTileA = 0;
    static constexpr noc::TileId kTileB = 1;
    static constexpr noc::TileId kMemTile = 2;
    static constexpr std::uint64_t kFreq = 100'000'000;

    DtuTest()
        : noc(eq, noc::NocParams{}),
          dtuA(eq, "dtuA", noc, kTileA, kFreq),
          dtuB(eq, "dtuB", noc, kTileB, kFreq),
          mem(eq, "mem", noc, kMemTile)
    {
        noc.finalize();
    }

    /** Wire up a send(A) -> recv(B) channel with given credits. */
    void
    channel(EpId sep, EpId rep, std::uint32_t credits,
            std::uint64_t label = 0x1234)
    {
        dtuB.configEp(rep, Endpoint::makeRecv(0, 256, 8));
        dtuA.configEp(sep, Endpoint::makeSend(0, kTileB, rep, label,
                                              credits));
    }

    sim::EventQueue eq;
    noc::Noc noc;
    Dtu dtuA;
    Dtu dtuB;
    MemoryTile mem;
};

TEST_F(DtuTest, SendDeliversMessage)
{
    channel(4, 4, 4);
    Error err = Error::Aborted;
    dtuA.cmdSend(0, 4, 0x1000, bytes("hello"), kInvalidEp,
                 [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    ASSERT_EQ(dtuB.unread(0, 4), 1u);
    int slot = dtuB.fetch(0, 4);
    ASSERT_GE(slot, 0);
    const Message &m = dtuB.slotMsg(4, slot);
    EXPECT_EQ(str(m.payload), "hello");
    EXPECT_EQ(m.label, 0x1234u);
    EXPECT_EQ(m.srcTile, kTileA);
    EXPECT_FALSE(m.canReply);
    EXPECT_EQ(dtuB.unread(0, 4), 0u);
}

TEST_F(DtuTest, SendConsumesAndAckReturnsCredits)
{
    channel(4, 4, 2);
    int ok = 0, nocredit = 0;
    auto send = [&]() {
        dtuA.cmdSend(0, 4, 0x1000, bytes("x"), kInvalidEp,
                     [&](Error e) {
                         if (e == Error::None)
                             ok++;
                         else if (e == Error::NoCredits)
                             nocredit++;
                     });
    };
    send();
    send();
    send();
    eq.run();
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(nocredit, 1);

    // Acknowledge one message: credit flows back, send succeeds again.
    int slot = dtuB.fetch(0, 4);
    ASSERT_GE(slot, 0);
    dtuB.ack(0, 4, slot);
    eq.run();
    send();
    eq.run();
    EXPECT_EQ(ok, 3);
}

TEST_F(DtuTest, ReplyRoundTrip)
{
    channel(4, 4, 4);
    // Reply endpoint on A.
    dtuA.configEp(5, Endpoint::makeRecv(0, 256, 4));

    Error serr = Error::Aborted;
    dtuA.cmdSend(0, 4, 0x1000, bytes("ping"), 5,
                 [&](Error e) { serr = e; });
    eq.run();
    ASSERT_EQ(serr, Error::None);

    int slot = dtuB.fetch(0, 4);
    ASSERT_GE(slot, 0);
    EXPECT_TRUE(dtuB.slotMsg(4, slot).canReply);

    Error rerr = Error::Aborted;
    dtuB.cmdReply(0, 4, slot, 0x2000, bytes("pong"),
                  [&](Error e) { rerr = e; });
    eq.run();
    EXPECT_EQ(rerr, Error::None);

    int rslot = dtuA.fetch(0, 5);
    ASSERT_GE(rslot, 0);
    EXPECT_EQ(str(dtuA.slotMsg(5, rslot).payload), "pong");

    // Reply acknowledged the original message: slot free, credit back.
    Error serr2 = Error::Aborted;
    dtuA.cmdSend(0, 4, 0x1000, bytes("again"), 5,
                 [&](Error e) { serr2 = e; });
    eq.run();
    EXPECT_EQ(serr2, Error::None);
    const Endpoint &sep = dtuA.ep(4);
    EXPECT_EQ(sep.send.credits, 3u); // one message outstanding
}

TEST_F(DtuTest, SecondReplyIsRejected)
{
    channel(4, 4, 4);
    dtuA.configEp(5, Endpoint::makeRecv(0, 256, 4));
    dtuA.cmdSend(0, 4, 0x1000, bytes("ping"), 5, [](Error) {});
    eq.run();
    int slot = dtuB.fetch(0, 4);
    dtuB.cmdReply(0, 4, slot, 0, bytes("pong"), [](Error) {});
    eq.run();
    Error rerr = Error::None;
    dtuB.cmdReply(0, 4, slot, 0, bytes("pong2"),
                  [&](Error e) { rerr = e; });
    eq.run();
    EXPECT_EQ(rerr, Error::NoReplyAllowed);
}

TEST_F(DtuTest, SendToInvalidEpNacks)
{
    dtuA.configEp(4, Endpoint::makeSend(0, kTileB, 9, 0, 2));
    Error err = Error::None;
    dtuA.cmdSend(0, 4, 0x1000, bytes("lost"), kInvalidEp,
                 [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::RecvGone);
    EXPECT_EQ(dtuA.nacksReceived(), 1u);
    // Credit was restored.
    EXPECT_EQ(dtuA.ep(4).send.credits, 2u);
}

TEST_F(DtuTest, SendBeyondMaxSizeFails)
{
    channel(4, 4, 4);
    Error err = Error::None;
    dtuA.cmdSend(0, 4, 0x1000, std::vector<std::uint8_t>(4096, 7),
                 kInvalidEp, [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::MsgTooBig);
}

TEST_F(DtuTest, SendFromNonSendEpFails)
{
    dtuA.configEp(4, Endpoint::makeRecv(0, 256, 4));
    Error err = Error::None;
    dtuA.cmdSend(0, 4, 0x1000, bytes("x"), kInvalidEp,
                 [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::InvalidEp);
}

TEST_F(DtuTest, LocalLoopbackDelivery)
{
    // Transparent multiplexing: tile-local messages also go through
    // the DTU (to a recv EP on the same tile).
    dtuA.configEp(6, Endpoint::makeRecv(0, 256, 4));
    dtuA.configEp(7, Endpoint::makeSend(0, kTileA, 6, 0xbeef, 2));
    Error err = Error::Aborted;
    dtuA.cmdSend(0, 7, 0x1000, bytes("local"), kInvalidEp,
                 [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    int slot = dtuA.fetch(0, 6);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(str(dtuA.slotMsg(6, slot).payload), "local");
}

TEST_F(DtuTest, LocalDeliveryIsFasterThanRemote)
{
    dtuA.configEp(6, Endpoint::makeRecv(0, 256, 4));
    dtuA.configEp(7, Endpoint::makeSend(0, kTileA, 6, 0, 2));
    channel(4, 4, 4);

    sim::Tick local_done = 0, remote_done = 0;
    dtuA.cmdSend(0, 7, 0, bytes("l"), kInvalidEp,
                 [&](Error) { local_done = eq.now(); });
    eq.run();
    sim::Tick start = eq.now();
    dtuA.cmdSend(0, 4, 0, bytes("r"), kInvalidEp,
                 [&](Error) { remote_done = eq.now(); });
    eq.run();
    EXPECT_LT(local_done, remote_done - start);
}

TEST_F(DtuTest, MemoryReadWriteRoundTrip)
{
    PhysAddr region = mem.alloc(8192);
    dtuA.configEp(2, Endpoint::makeMem(0, kMemTile, region, 8192,
                                       kPermRW));

    Error werr = Error::Aborted;
    dtuA.cmdWrite(0, 2, 128, bytes("persistent data"), 0x3000,
                  [&](Error e) { werr = e; });
    eq.run();
    ASSERT_EQ(werr, Error::None);

    Error rerr = Error::Aborted;
    std::vector<std::uint8_t> got;
    dtuA.cmdRead(0, 2, 128, 15, 0x3000,
                 [&](Error e, std::vector<std::uint8_t> d) {
                     rerr = e;
                     got = std::move(d);
                 });
    eq.run();
    ASSERT_EQ(rerr, Error::None);
    EXPECT_EQ(str(got), "persistent data");
}

TEST_F(DtuTest, MemoryPermissionsEnforced)
{
    PhysAddr region = mem.alloc(4096);
    dtuA.configEp(2, Endpoint::makeMem(0, kMemTile, region, 4096,
                                       kPermR));
    Error werr = Error::None;
    dtuA.cmdWrite(0, 2, 0, bytes("nope"), 0,
                  [&](Error e) { werr = e; });
    eq.run();
    EXPECT_EQ(werr, Error::PmpFault);

    dtuA.configEp(3, Endpoint::makeMem(0, kMemTile, region, 4096,
                                       kPermW));
    Error rerr = Error::None;
    dtuA.cmdRead(0, 3, 0, 16, 0,
                 [&](Error e, std::vector<std::uint8_t>) { rerr = e; });
    eq.run();
    EXPECT_EQ(rerr, Error::PmpFault);
}

TEST_F(DtuTest, MemoryOutOfBoundsRejected)
{
    PhysAddr region = mem.alloc(4096);
    dtuA.configEp(2, Endpoint::makeMem(0, kMemTile, region, 4096,
                                       kPermRW));
    Error err = Error::None;
    dtuA.cmdRead(0, 2, 4000, 200, 0,
                 [&](Error e, std::vector<std::uint8_t>) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::OutOfBounds);
}

TEST_F(DtuTest, ExternalInterfaceConfiguresRemoteEps)
{
    // "Controller" on tile A installs a recv EP on tile B remotely.
    std::vector<Endpoint> eps;
    eps.push_back(Endpoint::makeRecv(3, 128, 4));
    bool done = false;
    dtuA.extRequest(kTileB, ExtOp::SetEp, 9, std::move(eps), 1,
                    [&](Error e, std::vector<Endpoint>) {
                        EXPECT_EQ(e, Error::None);
                        done = true;
                    });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(dtuB.ep(9).kind, EpKind::Receive);
    EXPECT_EQ(dtuB.ep(9).act, 3);

    // And invalidates it again.
    done = false;
    dtuA.extRequest(kTileB, ExtOp::InvEp, 9, {}, 1,
                    [&](Error, std::vector<Endpoint>) { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(dtuB.ep(9).kind, EpKind::Invalid);
}

TEST_F(DtuTest, ExternalBulkSaveRestore)
{
    // M3x-style DTU state save: read EPs 4..7 from B, write them back.
    for (EpId i = 4; i < 8; i++)
        dtuB.configEp(i, Endpoint::makeRecv(0, 64, 2));

    std::vector<Endpoint> saved;
    dtuA.extRequest(kTileB, ExtOp::ReadEps, 4, {}, 4,
                    [&](Error e, std::vector<Endpoint> eps) {
                        EXPECT_EQ(e, Error::None);
                        saved = std::move(eps);
                    });
    eq.run();
    ASSERT_EQ(saved.size(), 4u);

    for (EpId i = 4; i < 8; i++)
        dtuB.invalidateEp(i);
    bool done = false;
    dtuA.extRequest(kTileB, ExtOp::WriteEps, 4, saved, 4,
                    [&](Error, std::vector<Endpoint>) { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    for (EpId i = 4; i < 8; i++)
        EXPECT_EQ(dtuB.ep(i).kind, EpKind::Receive);
}

TEST_F(DtuTest, CommandsSerializeFifo)
{
    channel(4, 4, 8);
    std::vector<int> order;
    for (int i = 0; i < 4; i++) {
        dtuA.cmdSend(0, 4, 0, bytes("m"), kInvalidEp,
                     [&order, i](Error) { order.push_back(i); });
    }
    EXPECT_TRUE(dtuA.cmdBusy());
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_FALSE(dtuA.cmdBusy());
    EXPECT_EQ(dtuB.unread(0, 4), 4u);
}

TEST_F(DtuTest, FetchOrderIsArrivalOrder)
{
    channel(4, 4, 8);
    for (int i = 0; i < 3; i++)
        dtuA.cmdSend(0, 4, 0, bytes(std::string(1, 'a' + i)),
                     kInvalidEp, [](Error) {});
    eq.run();
    for (int i = 0; i < 3; i++) {
        int slot = dtuB.fetch(0, 4);
        ASSERT_GE(slot, 0);
        EXPECT_EQ(str(dtuB.slotMsg(4, slot).payload),
                  std::string(1, 'a' + i));
    }
    EXPECT_EQ(dtuB.fetch(0, 4), -1);
}

TEST_F(DtuTest, StatsCountTraffic)
{
    channel(4, 4, 8);
    dtuA.cmdSend(0, 4, 0, bytes("m"), kInvalidEp, [](Error) {});
    eq.run();
    EXPECT_EQ(dtuA.msgsSent(), 1u);
    EXPECT_EQ(dtuB.msgsReceived(), 1u);
}

} // namespace
} // namespace m3v::dtu
