/**
 * @file
 * Lifetime and steady-state tests for the zero-copy slab message
 * path (sim/slab_pool.h + the DTU payload hand-off):
 *
 *  - a warmed-up send/fetch/ack loop performs zero heap allocations
 *    and zero payload byte-copies per message, in both unreliable
 *    and reliable (retx-armed) wire modes;
 *  - a retransmission-held extent survives the receiver reaping the
 *    slot mid-flight (VDtu::resetAct), with the pool conservation
 *    law intact and no stale release;
 *  - fault-injected corruption mutates a copy-on-write clone, so the
 *    retx-held original redelivers the clean bytes;
 *  - releasing a stale {slot, generation} handle is detected and
 *    counted instead of corrupting the freelist;
 *  - same-tick doorbells for one (ep, act) coalesce into a single
 *    deferred flush, and the flush never outlives the tick.
 *
 * This binary overrides global operator new/delete to count heap
 * allocations, in the style of tests/sim/event_core_test.cc.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/vdtu.h"
#include "dtu/dtu.h"
#include "sim/fault.h"
#include "sim/invariants.h"
#include "sim/slab_pool.h"

// The replacement operator new below forwards to malloc, so pairing
// its allocations with the matching free-based delete is correct;
// GCC's heuristic cannot see that and warns.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}

void *
operator new(std::size_t size)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace m3v::dtu {
namespace {

constexpr noc::TileId kTileA = 0;
constexpr noc::TileId kTileB = 1;
constexpr std::uint64_t kFreq = 100'000'000;
constexpr EpId kSep = 4;
constexpr EpId kRep = 4;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/**
 * Two plain DTUs over a (possibly faulty) NoC with a pump that keeps
 * a configurable number of sends going from a single long-lived
 * extent — the steady-state fixture.
 */
class MsgPathTest : public ::testing::Test
{
  protected:
    void
    build(sim::FaultPlan *plan)
    {
        noc::NocParams params;
        params.faults = plan;
        noc = std::make_unique<noc::Noc>(eq, params);
        dtuA = std::make_unique<Dtu>(eq, "dtuA", *noc, kTileA, kFreq);
        dtuB = std::make_unique<Dtu>(eq, "dtuB", *noc, kTileB, kFreq);
        noc->finalize();
        dtuB->configEp(kRep, Endpoint::makeRecv(0, 256, 8));
        dtuA->configEp(kSep,
                       Endpoint::makeSend(0, kTileB, kRep, 0x77, 4));
        dtuB->setMsgNotify([this](EpId ep, ActId) {
            int slot;
            while ((slot = dtuB->fetch(0, ep)) >= 0) {
                const Message &m = dtuB->slotMsg(ep, slot);
                const std::vector<std::uint8_t> &p = m.payload;
                if (!p.empty())
                    consumedBytes += p[0];
                received++;
                dtuB->ack(0, ep, slot);
            }
        });
        extent = noc->payloadPool().make(64);
        auto &b = extent.mutableBytes();
        for (std::size_t i = 0; i < b.size(); i++)
            b[i] = static_cast<std::uint8_t>(i + 1);
    }

    /** Send `remaining` messages back-to-back, backing off on
     *  NoCredits; every closure captures only `this` so the pump
     *  itself stays allocation-free. */
    void
    pump()
    {
        if (remaining == 0)
            return;
        dtuA->cmdSendRef(0, kSep, 0x1000, extent, kInvalidEp,
                         [this](Error e) {
                             if (e == Error::None) {
                                 remaining--;
                                 pump();
                             } else if (e == Error::NoCredits) {
                                 eq.schedule(2000,
                                             [this]() { pump(); });
                             } else {
                                 FAIL() << "send failed: "
                                        << errorName(e);
                             }
                         });
    }

    void
    runBatch(std::uint64_t n)
    {
        remaining = n;
        pump();
        eq.run();
        ASSERT_EQ(remaining, 0u);
    }

    sim::EventQueue eq;
    std::unique_ptr<noc::Noc> noc;
    std::unique_ptr<Dtu> dtuA;
    std::unique_ptr<Dtu> dtuB;
    sim::PayloadRef extent;
    std::uint64_t remaining = 0;
    std::uint64_t received = 0;
    std::uint64_t consumedBytes = 0;
};

/**
 * Tentpole acceptance check: after warm-up, a send/fetch/ack round
 * trip performs zero heap allocations and zero payload byte-copies.
 * Every structure on the path — command state, wire headers, NoC
 * queues, recv slots, doorbells, event records — must be pooled or
 * in recycled capacity.
 */
TEST_F(MsgPathTest, SteadyStateIsAllocAndCopyFree)
{
    build(nullptr);
    // Warm every pool, ring and freelist. The timing wheel needs a
    // few full rotations (512 buckets x 2048 ticks) before each
    // bucket's vector has seen its steady-state occupancy.
    runBatch(8192);

    sim::SlabPool::Stats s0 = noc->payloadPool().stats();
    std::uint64_t a0 = gAllocCount.load();
    runBatch(1024);
    std::uint64_t a1 = gAllocCount.load();
    sim::SlabPool::Stats s1 = noc->payloadPool().stats();

    EXPECT_EQ(a1 - a0, 0u) << "heap allocations in steady state";
    EXPECT_EQ(s1.byteCopies - s0.byteCopies, 0u)
        << "payload byte-copies in steady state";
    EXPECT_EQ(received, 8192u + 1024u);
    // Conservation: every extent ever created is live or free.
    EXPECT_EQ(s1.allocated, s1.live + s1.free);
    EXPECT_EQ(s1.staleReleases, 0u);
}

/**
 * The same law with the reliable wire protocol armed (an empty fault
 * plan switches the DTUs to sequence numbers, retx timers, delivery
 * acks and credit-return acks): the retx engine keeps messages alive
 * by refcount, its save path must not heap-allocate per packet, and
 * the dedup windows must run in recycled ring capacity.
 */
TEST_F(MsgPathTest, ReliableModeSteadyStateIsAllocAndCopyFree)
{
    sim::FaultPlan plan(7); // no windows: reliable mode, no faults
    build(&plan);
    ASSERT_TRUE(dtuA->reliable());
    // Warm the retx vector, dedup windows, timer pool and the timing
    // wheel (several full rotations, as above).
    runBatch(8192);

    sim::SlabPool::Stats s0 = noc->payloadPool().stats();
    std::uint64_t a0 = gAllocCount.load();
    runBatch(1024);
    std::uint64_t a1 = gAllocCount.load();
    sim::SlabPool::Stats s1 = noc->payloadPool().stats();

    EXPECT_EQ(a1 - a0, 0u)
        << "heap allocations on the reliable retx save path";
    EXPECT_EQ(s1.byteCopies - s0.byteCopies, 0u);
    EXPECT_EQ(dtuA->retransmits(), 0u);
    EXPECT_EQ(s1.allocated, s1.live + s1.free);
    EXPECT_EQ(s1.staleReleases, 0u);
}

/** The copying baseline really copies (the A/B bench is honest):
 *  two byte-copies per message, wire creation + recv-slot store. */
TEST_F(MsgPathTest, CopyBaselinePaysTwoCopiesPerMessage)
{
    build(nullptr);
    dtuA->setCopyBaseline(true);
    dtuB->setCopyBaseline(true);
    sim::SlabPool::Stats s0 = noc->payloadPool().stats();
    runBatch(100);
    sim::SlabPool::Stats s1 = noc->payloadPool().stats();
    EXPECT_EQ(s1.byteCopies - s0.byteCopies, 200u);
    EXPECT_EQ(s1.copiedBytes - s0.copiedBytes, 200u * 64);
}

/**
 * Extent lifetime under fault injection: the receiver reaps the
 * recv slot (VDtu::resetAct, the controller killing an activity)
 * while the sender's retransmission engine still holds a reference
 * to the same extent. The reap releases the slot's reference; the
 * retx reference must keep the extent valid until the delivery ack
 * finally arrives, and the generation check must see no stale
 * release.
 */
TEST(MsgPathLifetimeTest, RetxHeldExtentSurvivesReceiverReap)
{
    sim::EventQueue eq;
    sim::FaultPlan plan(3);
    // Kill everything leaving tile B (the delivery acks) for 30us:
    // A retransmits into the void while B holds the message.
    plan.addDrop("noc.tile1.inj", 1.0, 0, 30 * sim::kTicksPerUs);
    noc::NocParams params;
    params.faults = &plan;
    noc::Noc noc(eq, params);
    Dtu dtuA(eq, "dtuA", noc, kTileA, kFreq);
    core::VDtu dtuB(eq, "vdtuB", noc, kTileB, kFreq);
    noc.finalize();
    constexpr ActId kVictim = 5;
    dtuB.configEp(kRep, Endpoint::makeRecv(kVictim, 256, 8));
    dtuA.configEp(kSep,
                  Endpoint::makeSend(0, kTileB, kRep, 0x77, 4));

    Error err = Error::Aborted;
    dtuA.cmdSend(0, kSep, 0x1000, bytes("reaped-under-retx"),
                 kInvalidEp, [&](Error e) { err = e; });
    // Mid-drop-window, the controller reaps the victim activity: the
    // recv slot (and its payload reference) is released while A's
    // retx entry still shares the extent.
    eq.schedule(10 * sim::kTicksPerUs, [&]() {
        EXPECT_EQ(dtuB.unread(kVictim, kRep), 1u);
        dtuB.resetAct(kVictim);
        EXPECT_EQ(dtuB.unread(kVictim, kRep), 0u);
    });
    eq.run();

    // B remembered the outcome before the reap, so the post-window
    // retransmit dedups and re-acks: the send completes cleanly.
    EXPECT_EQ(err, Error::None);
    EXPECT_GT(dtuA.retransmits(), 0u);
    sim::SlabPool::Stats s = noc.payloadPool().stats();
    EXPECT_EQ(s.staleReleases, 0u);
    EXPECT_EQ(s.allocated, s.live + s.free);
    EXPECT_EQ(s.live, 0u) << "extent leaked after reap + ack";
    EXPECT_TRUE(dtuA.engineQuiescent());
}

/**
 * Corruption under COW: the fault site mutates the in-flight wire
 * copy, which shares its extent with the retx save. The mutation
 * must clone (copy-on-write), the corrupt clone is discarded at the
 * receiver, and the retransmission delivers the untouched original.
 */
TEST(MsgPathLifetimeTest, CorruptionMutatesCowCloneNotRetxOriginal)
{
    sim::EventQueue eq;
    sim::FaultPlan plan(4);
    // Corrupt everything leaving tile A for 30us: the initial xfer
    // (t=0) and the first retransmission (t=20us) are mangled and
    // discarded; the second retransmission (t=60us) is clean.
    plan.addCorrupt("noc.tile0.inj", 1.0, 0, 30 * sim::kTicksPerUs);
    noc::NocParams params;
    params.faults = &plan;
    noc::Noc noc(eq, params);
    Dtu dtuA(eq, "dtuA", noc, kTileA, kFreq);
    Dtu dtuB(eq, "dtuB", noc, kTileB, kFreq);
    noc.finalize();
    dtuB.configEp(kRep, Endpoint::makeRecv(0, 256, 8));
    dtuA.configEp(kSep,
                  Endpoint::makeSend(0, kTileB, kRep, 0x77, 4));

    std::vector<std::uint8_t> original =
        bytes("payload-that-must-arrive-unmangled");
    Error err = Error::Aborted;
    dtuA.cmdSend(0, kSep, 0x1000, original, kInvalidEp,
                 [&](Error e) { err = e; });
    eq.run();

    EXPECT_EQ(err, Error::None);
    EXPECT_GT(dtuB.corruptDropped(), 0u);
    int slot = dtuB.fetch(0, kRep);
    ASSERT_GE(slot, 0);
    const std::vector<std::uint8_t> &got =
        dtuB.slotMsg(kRep, slot).payload;
    EXPECT_EQ(got, original);
    sim::SlabPool::Stats s = noc.payloadPool().stats();
    EXPECT_GE(s.cowClones, 1u) << "corruption wrote through a "
                                  "shared extent instead of cloning";
    EXPECT_EQ(s.staleReleases, 0u);
    EXPECT_EQ(s.allocated, s.live + s.free);
}

/** A rogue release of an already-recycled {slot, generation} handle
 *  is rejected by the generation check and counted, and the later
 *  legitimate release of the recycled slot still balances. */
TEST(MsgPathLifetimeTest, DoubleReleaseCaughtByGenerationCheck)
{
    sim::SlabPool pool;
    sim::PayloadRef r = pool.make(64);
    std::uint32_t slot = r.debugSlot();
    std::uint32_t gen = r.debugGen();

    // First (rogue) release recycles the slot under the live ref.
    EXPECT_TRUE(pool.releaseHandle(slot, gen));
    EXPECT_EQ(pool.stats().staleReleases, 0u);
    EXPECT_EQ(pool.stats().live, 0u);

    // The ref's own destructor-release now carries a stale
    // generation: detected, counted, freelist untouched.
    r.reset();
    sim::SlabPool::Stats s = pool.stats();
    EXPECT_EQ(s.staleReleases, 1u);
    EXPECT_EQ(s.live, 0u);
    EXPECT_EQ(s.allocated, s.free);

    // The recycled slot still works (a second release of the same
    // stale handle is likewise rejected).
    EXPECT_FALSE(pool.releaseHandle(slot, gen));
    EXPECT_EQ(pool.stats().staleReleases, 2u);
    sim::PayloadRef r2 = pool.make(16);
    EXPECT_EQ(pool.stats().live, 1u);
    r2.reset();
    EXPECT_EQ(pool.stats().live, 0u);
}

/**
 * Doorbell batching: the first notification per (ep, act) in a tick
 * rings inline (latency-neutral); same-tick duplicates coalesce into
 * one deferred flush, and no deferred doorbell survives the tick.
 */
TEST(MsgPathDoorbellTest, SameTickDoorbellsCoalesce)
{
    sim::EventQueue eq;
    noc::NocParams params;
    noc::Noc noc(eq, params);
    Dtu dtu(eq, "dtu", noc, kTileA, kFreq);
    noc.finalize();
    dtu.configEp(kRep, Endpoint::makeRecv(0, 64, 8));
    dtu.configEp(5, Endpoint::makeRecv(1, 64, 8));

    std::uint64_t notifies = 0;
    dtu.setMsgNotify([&](EpId, ActId) { notifies++; });

    // Three device stores for one (ep, act) in the same tick: one
    // inline ring, the rest fold into a single flush.
    ASSERT_TRUE(dtu.deviceMessage(kRep, bytes("a")));
    ASSERT_TRUE(dtu.deviceMessage(kRep, bytes("b")));
    ASSERT_TRUE(dtu.deviceMessage(kRep, bytes("c")));
    EXPECT_EQ(notifies, 1u);
    EXPECT_EQ(dtu.doorbellsCoalesced(), 2u);
    EXPECT_FALSE(dtu.doorbellIdle()); // flush pending this tick

    eq.run();
    EXPECT_EQ(notifies, 2u); // exactly one deferred wakeup
    EXPECT_TRUE(dtu.doorbellIdle());
    EXPECT_TRUE(dtu.doorbellFlushLawOk());

    // Distinct (ep, act) pairs do not coalesce: both ring inline.
    ASSERT_TRUE(dtu.deviceMessage(kRep, bytes("d")));
    ASSERT_TRUE(dtu.deviceMessage(5, bytes("e")));
    EXPECT_EQ(notifies, 4u);
    EXPECT_EQ(dtu.doorbellsCoalesced(), 2u);
    EXPECT_TRUE(dtu.doorbellIdle()); // nothing deferred
}

/** The registered invariant set (slab conservation, doorbell flush
 *  law, credit conservation, engine drain) holds at every event
 *  boundary of a faulty retx-heavy run and at quiescence. */
TEST(MsgPathInvariantTest, SlabAndDoorbellLawsHoldUnderFaults)
{
    sim::EventQueue eq;
    sim::FaultPlan plan(11);
    plan.addDrop("noc.tile0.inj", 0.3, 0, 100 * sim::kTicksPerUs);
    plan.addDrop("noc.tile1.inj", 0.3, 0, 100 * sim::kTicksPerUs);
    plan.addCorrupt("noc.tile0.inj", 0.2, 0, 50 * sim::kTicksPerUs);
    noc::NocParams params;
    params.faults = &plan;
    noc::Noc noc(eq, params);
    Dtu dtuA(eq, "dtuA", noc, kTileA, kFreq);
    Dtu dtuB(eq, "dtuB", noc, kTileB, kFreq);
    noc.finalize();
    dtuB.configEp(kRep, Endpoint::makeRecv(0, 256, 8));
    dtuA.configEp(kSep,
                  Endpoint::makeSend(0, kTileB, kRep, 0x77, 4));
    dtuB.setMsgNotify([&](EpId ep, ActId) {
        int slot;
        while ((slot = dtuB.fetch(0, ep)) >= 0)
            dtuB.ack(0, ep, slot);
    });

    sim::Invariants inv;
    registerDtuInvariants(inv, {&dtuA, &dtuB});
    inv.attach(eq);

    std::uint64_t remaining = 64;
    std::uint64_t done = 0;
    std::function<void()> pumpFn;
    pumpFn = [&]() {
        if (remaining == 0)
            return;
        dtuA.cmdSend(0, kSep, 0x1000, bytes("fault-soak"),
                     kInvalidEp, [&](Error e) {
                         done++;
                         if (e == Error::None ||
                             e == Error::Timeout) {
                             remaining--;
                             pumpFn();
                         } else if (e == Error::NoCredits) {
                             eq.schedule(5000, [&]() { pumpFn(); });
                         }
                     });
    };
    pumpFn();
    eq.run();

    inv.runAll(true);
    EXPECT_TRUE(inv.ok()) << inv.report();
    EXPECT_GE(done, 64u);
    sim::SlabPool::Stats s = noc.payloadPool().stats();
    EXPECT_EQ(s.allocated, s.live + s.free);
    EXPECT_EQ(s.staleReleases, 0u);
}

} // namespace
} // namespace m3v::dtu
