/**
 * @file
 * Integration tests for the OS services on the full platform: file
 * sessions against m3fs (extent grants, direct data path), the pager
 * (MapFor sidecalls), and UDP sockets through net + NIC + ExtHost.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "services/file_client.h"
#include "services/m3fs.h"
#include "services/net.h"
#include "services/pager.h"

namespace m3v::services {
namespace {

using dtu::Error;
using os::Bytes;

Bytes
bytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
str(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

class FsServiceTest : public ::testing::Test
{
  protected:
    FsServiceTest() : sys(eq), fs(sys, 0)
    {
        app = sys.createApp(1, "app");
        client = fs.addClient(app);
        fs.startService();
    }

    sim::EventQueue eq;
    os::System sys;
    M3fs fs;
    os::System::App *app = nullptr;
    M3fs::Client client;
};

TEST_F(FsServiceTest, WriteCloseReadRoundTrip)
{
    bool done = false;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        FileSession f(env, client);
        Error err = Error::Aborted;
        co_await f.open("/data.bin", kOpenW | kOpenCreate, &err);
        EXPECT_EQ(err, Error::None);
        co_await f.write(bytes("hello extent world"), &err);
        EXPECT_EQ(err, Error::None);
        co_await f.close(&err);
        EXPECT_EQ(err, Error::None);

        FileSession r(env, client, 1);
        co_await r.open("/data.bin", kOpenR, &err);
        EXPECT_EQ(err, Error::None);
        EXPECT_EQ(r.size(), 18u);
        Bytes back;
        co_await r.read(4096, &back, &err);
        EXPECT_EQ(err, Error::None);
        EXPECT_EQ(str(back), "hello extent world");
        co_await r.read(4096, &back, &err);
        EXPECT_TRUE(back.empty()); // EOF
        co_await r.close(&err);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(FsServiceTest, LargeFileSpansExtentsAndRpcsAreAmortized)
{
    // 2 MiB file, 4 KiB buffer: 512 reads but only ~10 extent RPCs
    // (growing allocation hint up to 64-block extents) — the
    // Figure 7 mechanism.
    bool done = false;
    std::uint64_t write_rpcs = 0, read_rpcs = 0;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        constexpr std::size_t kFile = 2 << 20;
        constexpr std::size_t kBuf = 4096;
        FileSession w(env, client);
        Error err = Error::Aborted;
        co_await w.open("/big", kOpenW | kOpenCreate, &err);
        EXPECT_EQ(err, Error::None);
        Bytes chunk(kBuf);
        for (std::size_t i = 0; i < kBuf; i++)
            chunk[i] = static_cast<std::uint8_t>(i);
        for (std::size_t off = 0; off < kFile; off += kBuf) {
            co_await w.write(chunk, &err);
            EXPECT_EQ(err, Error::None);
        }
        write_rpcs = w.extentRpcs();
        co_await w.close(&err);

        FileSession r(env, client, 1);
        co_await r.open("/big", kOpenR, &err);
        EXPECT_EQ(r.size(), kFile);
        std::size_t total = 0;
        bool content_ok = true;
        for (;;) {
            Bytes b;
            co_await r.read(kBuf, &b, &err);
            if (b.empty())
                break;
            content_ok &= (b[1] == 1 && b[100] == 100);
            total += b.size();
        }
        EXPECT_TRUE(content_ok);
        EXPECT_EQ(total, kFile);
        read_rpcs = r.extentRpcs();
        co_await r.close(&err);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    // Growing hint: 4+16+64+64+... blocks = 10 extents for 512.
    EXPECT_EQ(write_rpcs, 10u);
    EXPECT_EQ(read_rpcs, 10u);
}

TEST_F(FsServiceTest, RandomAccessReadSeeks)
{
    bool done = false;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        FileSession w(env, client);
        Error err = Error::Aborted;
        co_await w.open("/rand", kOpenW | kOpenCreate, &err);
        // Write 1 MiB with a position-dependent pattern.
        for (unsigned blk = 0; blk < 256; blk++) {
            Bytes chunk(4096, static_cast<std::uint8_t>(blk));
            co_await w.write(std::move(chunk), &err);
        }
        co_await w.close(&err);

        FileSession r(env, client, 1);
        co_await r.open("/rand", kOpenR, &err);
        // Jump around, crossing extents (64-block = 256 KiB).
        for (unsigned blk : {200u, 3u, 255u, 64u, 129u}) {
            r.seek(static_cast<std::uint64_t>(blk) * 4096);
            Bytes b;
            co_await r.read(16, &b, &err);
            EXPECT_EQ(err, Error::None);
            EXPECT_EQ(b.size(), 16u);
            EXPECT_EQ(b[0], static_cast<std::uint8_t>(blk));
        }
        co_await r.close(&err);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(FsServiceTest, StatReaddirUnlink)
{
    bool done = false;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        FileSession f(env, client);
        Error err = Error::Aborted;
        co_await f.mkdir("/dir", &err);
        EXPECT_EQ(err, Error::None);
        FileSession w(env, client, 1);
        co_await w.open("/dir/a", kOpenW | kOpenCreate, &err);
        co_await w.write(bytes("abc"), &err);
        co_await w.close(&err);

        FsResp st;
        co_await f.stat("/dir/a", &st);
        EXPECT_EQ(st.err, Error::None);
        EXPECT_EQ(st.size, 3u);
        EXPECT_EQ(st.isDir, 0);
        co_await f.stat("/dir", &st);
        EXPECT_EQ(st.isDir, 1);

        FsResp de;
        co_await f.readdir("/dir", 0, &de);
        EXPECT_STREQ(de.name, "a");
        EXPECT_EQ(de.more, 0);

        co_await f.unlink("/dir/a", &err);
        EXPECT_EQ(err, Error::None);
        co_await f.stat("/dir/a", &st);
        EXPECT_NE(st.err, Error::None);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
}

TEST(PagerTest, AllocMapBacksHeapViaSidecalls)
{
    sim::EventQueue eq;
    os::System sys(eq);
    PagerService pager(sys, 0);
    auto *app = sys.createApp(1, "app");
    auto wiring = pager.addClient(app);
    pager.startService();

    bool done = false;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        dtu::VirtAddr va = 0;
        Error err = Error::Aborted;
        co_await pagerAllocMap(env, wiring, 4, &va, &err);
        EXPECT_EQ(err, Error::None);
        EXPECT_NE(va, 0u);
        // The mapping is installed in the page table: a transl
        // TMCall resolves without the fault handler.
        co_await env.mux().translCall(env.activity(), va, true);
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(pager.pagesMapped(), 4u);
    // One MapFor syscall per page, each forwarded as a sidecall.
    EXPECT_EQ(sys.syscalls(), 4u);
}

class NetTest : public ::testing::Test
{
  protected:
    NetTest()
        : sys(eq), nic(eq, "nic"),
          host(eq, "host", ExtHost::Mode::Echo), net(sys, 0, nic)
    {
        nic.connect(&host);
        host.connect(&nic);
        app = sys.createApp(1, "app");
        wiring = net.addClient(app);
        net.startService();
    }

    sim::EventQueue eq;
    os::System sys;
    Nic nic;
    ExtHost host;
    NetService net;
    os::System::App *app = nullptr;
    NetService::Client wiring;
};

TEST_F(NetTest, UdpEchoRoundTrip)
{
    bool done = false;
    sim::Tick t0 = 0, t1 = 0;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        UdpSocket sock(env, wiring);
        Error err = Error::Aborted;
        co_await sock.create(7000, &err);
        EXPECT_EQ(err, Error::None);
        t0 = eq.now();
        co_await sock.sendTo(0x0a000001, 9, bytes("x"), &err);
        EXPECT_EQ(err, Error::None);
        Bytes back;
        co_await sock.recv(&back, &err);
        t1 = eq.now();
        EXPECT_EQ(err, Error::None);
        EXPECT_EQ(str(back), "x");
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(host.framesReceived(), 1u);
    EXPECT_EQ(net.packetsTx(), 1u);
    EXPECT_EQ(net.packetsRx(), 1u);
    // Round trip dominated by wire + host turnaround: hundreds of us.
    EXPECT_GT(t1 - t0, 100 * sim::kTicksPerUs);
    EXPECT_LT(t1 - t0, 1000 * sim::kTicksPerUs);
}

TEST_F(NetTest, ManyPacketsAllEchoed)
{
    bool done = false;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        UdpSocket sock(env, wiring);
        Error err = Error::Aborted;
        co_await sock.create(7000, &err);
        for (int i = 0; i < 20; i++) {
            co_await sock.sendTo(0x0a000001, 9,
                                 bytes("pkt" + std::to_string(i)),
                                 &err);
            EXPECT_EQ(err, Error::None);
            Bytes back;
            co_await sock.recv(&back, &err);
            EXPECT_EQ(str(back), "pkt" + std::to_string(i));
        }
        done = true;
    });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(net.packetsRx(), 20u);
    EXPECT_EQ(net.rxDropped(), 0u);
}

TEST_F(NetTest, UnboundPortIsDropped)
{
    bool done = false;
    sys.start(app, [&](os::MuxEnv &env) -> sim::Task {
        UdpSocket sock(env, wiring);
        Error err = Error::Aborted;
        co_await sock.create(7000, &err);
        co_await sock.sendTo(0x0a000001, 9, bytes("x"), &err);
        // Echo comes back to port 7000; close first so it drops.
        co_await env.thread().compute(80);
        done = true;
    });
    // Let the app finish, then reopen: simpler: just check the echo
    // to a port nobody bound is dropped by sending from port 0.
    eq.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace m3v::services
