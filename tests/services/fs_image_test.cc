/**
 * @file
 * Unit tests for the m3fs metadata model: namespace operations,
 * extent allocation (64-block cap), truncation, and block accounting.
 */

#include <gtest/gtest.h>

#include "services/fs_image.h"

namespace m3v::services {
namespace {

TEST(FsImage, CreateAndLookup)
{
    FsImage fs(1024);
    EXPECT_EQ(fs.lookup("/"), 0u);
    Ino f = fs.create("/hello.txt", false);
    ASSERT_NE(f, kNoIno);
    EXPECT_EQ(fs.lookup("/hello.txt"), f);
    EXPECT_EQ(fs.lookup("/missing"), kNoIno);
}

TEST(FsImage, NestedDirectories)
{
    FsImage fs(1024);
    ASSERT_NE(fs.create("/a", true), kNoIno);
    ASSERT_NE(fs.create("/a/b", true), kNoIno);
    Ino f = fs.create("/a/b/c.dat", false);
    ASSERT_NE(f, kNoIno);
    EXPECT_EQ(fs.lookup("/a/b/c.dat"), f);
    // Missing parent fails.
    EXPECT_EQ(fs.create("/x/y", false), kNoIno);
    // Duplicate fails.
    EXPECT_EQ(fs.create("/a/b", true), kNoIno);
}

TEST(FsImage, ExtentCapRespected)
{
    FsImage fs(1024, 4096, 64);
    Ino f = fs.create("/big", false);
    Extent e;
    ASSERT_TRUE(fs.appendExtent(f, &e));
    EXPECT_LE(e.count, 64u);
    EXPECT_EQ(e.count, 64u); // plenty of free space -> full extent
    EXPECT_EQ(fs.freeBlocks(), 1024u - 64u);
}

TEST(FsImage, ExtentsDoNotOverlap)
{
    FsImage fs(1024, 4096, 64);
    Ino a = fs.create("/a", false);
    Ino b = fs.create("/b", false);
    std::vector<bool> used(1024, false);
    for (int i = 0; i < 6; i++) {
        Extent e;
        ASSERT_TRUE(fs.appendExtent(i % 2 ? a : b, &e));
        for (std::uint32_t blk = e.start; blk < e.start + e.count;
             blk++) {
            EXPECT_FALSE(used[blk]);
            used[blk] = true;
        }
    }
}

TEST(FsImage, AllocatesUntilFullThenFails)
{
    FsImage fs(128, 4096, 64);
    Ino f = fs.create("/f", false);
    Extent e;
    ASSERT_TRUE(fs.appendExtent(f, &e));
    ASSERT_TRUE(fs.appendExtent(f, &e));
    EXPECT_EQ(fs.freeBlocks(), 0u);
    EXPECT_FALSE(fs.appendExtent(f, &e));
}

TEST(FsImage, TruncateFreesBlocks)
{
    FsImage fs(128, 4096, 64);
    Ino f = fs.create("/f", false);
    Extent e;
    fs.appendExtent(f, &e);
    fs.appendExtent(f, &e);
    fs.inode(f)->size = 100000;
    fs.truncate(f);
    EXPECT_EQ(fs.freeBlocks(), 128u);
    EXPECT_EQ(fs.inode(f)->size, 0u);
    EXPECT_TRUE(fs.inode(f)->extents.empty());
    // Space is reusable.
    EXPECT_TRUE(fs.appendExtent(f, &e));
}

TEST(FsImage, UnlinkRemovesAndFrees)
{
    FsImage fs(128, 4096, 64);
    Ino f = fs.create("/f", false);
    Extent e;
    fs.appendExtent(f, &e);
    EXPECT_TRUE(fs.unlink("/f"));
    EXPECT_EQ(fs.lookup("/f"), kNoIno);
    EXPECT_EQ(fs.freeBlocks(), 128u);
    EXPECT_FALSE(fs.unlink("/f"));
}

TEST(FsImage, UnlinkNonEmptyDirFails)
{
    FsImage fs(128);
    fs.create("/d", true);
    fs.create("/d/f", false);
    EXPECT_FALSE(fs.unlink("/d"));
    EXPECT_TRUE(fs.unlink("/d/f"));
    EXPECT_TRUE(fs.unlink("/d"));
}

TEST(FsImage, ReaddirEnumeratesSorted)
{
    FsImage fs(128);
    fs.create("/dir", true);
    fs.create("/dir/charlie", false);
    fs.create("/dir/alpha", false);
    fs.create("/dir/bravo", false);
    Ino dir = fs.lookup("/dir");
    std::string name;
    Ino child;
    ASSERT_TRUE(fs.entryAt(dir, 0, &name, &child));
    EXPECT_EQ(name, "alpha");
    ASSERT_TRUE(fs.entryAt(dir, 1, &name, &child));
    EXPECT_EQ(name, "bravo");
    ASSERT_TRUE(fs.entryAt(dir, 2, &name, &child));
    EXPECT_EQ(name, "charlie");
    EXPECT_FALSE(fs.entryAt(dir, 3, &name, &child));
    EXPECT_EQ(fs.entryCount(dir), 3u);
}

TEST(FsImage, OpCostAccumulatesAndResets)
{
    FsImage fs(1024);
    fs.create("/a", true);
    fs.create("/a/f", false);
    sim::Cycles c1 = fs.takeOpCost();
    EXPECT_GT(c1, 0u);
    EXPECT_EQ(fs.takeOpCost(), 0u);
    fs.lookup("/a/f");
    EXPECT_GT(fs.takeOpCost(), 0u);
}

class FsImageSweep
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FsImageSweep, MaxExtentParameterIsHonoured)
{
    std::uint32_t cap = GetParam();
    FsImage fs(4096, 4096, cap);
    Ino f = fs.create("/f", false);
    for (int i = 0; i < 8; i++) {
        Extent e;
        ASSERT_TRUE(fs.appendExtent(f, &e));
        EXPECT_LE(e.count, cap);
    }
}

INSTANTIATE_TEST_SUITE_P(Caps, FsImageSweep,
                         ::testing::Values(1u, 4u, 16u, 64u, 256u));

} // namespace
} // namespace m3v::services
