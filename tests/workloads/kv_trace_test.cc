/**
 * @file
 * Integration tests: the trace player and leveldb-lite running on
 * BOTH substrates (m3fs on the M3v platform, tmpfs on the Linux
 * model) with identical application code — the portability the
 * paper's musl-based compatibility layer provides.
 */

#include <gtest/gtest.h>

#include <memory>

#include "services/m3fs.h"
#include "workloads/kv.h"
#include "workloads/trace.h"
#include "workloads/vfs_linux.h"
#include "workloads/vfs_m3v.h"
#include "workloads/ycsb.h"

namespace m3v::workloads {
namespace {

/** Runs a workload body against an M3v app + m3fs. */
struct M3vRig
{
    M3vRig() : sys(eq), fs(sys, 0)
    {
        app = sys.createApp(1, "app");
        client = fs.addClient(app);
        fs.startService();
    }

    void
    run(std::function<sim::Task(Vfs &)> body)
    {
        sys.start(app, [this, body](os::MuxEnv &env) -> sim::Task {
            M3vVfs vfs(env, client);
            co_await body(vfs);
        });
        eq.run();
    }

    sim::EventQueue eq;
    os::System sys;
    services::M3fs fs;
    os::System::App *app = nullptr;
    services::M3fs::Client client;
};

/** Runs a workload body against the Linux model + tmpfs. */
struct LinuxRig
{
    LinuxRig()
        : core(eq, "c", tile::CoreModel::boom(), 0),
          kernel(eq, "k", core)
    {
        proc = kernel.createProcess("app");
    }

    void
    run(std::function<sim::Task(Vfs &)> body)
    {
        kernel.start(proc, sim::invoke([this, body]() -> sim::Task {
            LinuxVfs vfs(kernel, *proc);
            co_await body(vfs);
            co_await kernel.sysExit(*proc);
        }));
        eq.run();
    }

    sim::EventQueue eq;
    tile::Core core;
    linuxref::LinuxKernel kernel;
    linuxref::LinuxProcess *proc = nullptr;
};

sim::Task
traceBody(Vfs &vfs, const Trace &trace, TraceStats *stats,
          bool *done)
{
    co_await traceSetup(vfs, trace);
    co_await tracePlay(vfs, trace, stats);
    *done = true;
}

TEST(TracePlayer, FindTraceRunsOnM3v)
{
    M3vRig rig;
    Trace trace = makeFindTrace(6, 10);
    TraceStats stats;
    bool done = false;
    rig.run([&](Vfs &vfs) -> sim::Task {
        co_await traceBody(vfs, trace, &stats, &done);
    });
    EXPECT_TRUE(done);
    // 6 dirs: 1 + 6 stats + 6 readdirs (11 calls each) + 60 stats.
    EXPECT_GE(stats.fsOps, 100u);
}

TEST(TracePlayer, FindTraceRunsOnLinux)
{
    LinuxRig rig;
    Trace trace = makeFindTrace(6, 10);
    TraceStats stats;
    bool done = false;
    rig.run([&](Vfs &vfs) -> sim::Task {
        co_await traceBody(vfs, trace, &stats, &done);
    });
    EXPECT_TRUE(done);
    EXPECT_GE(stats.fsOps, 100u);
}

TEST(TracePlayer, SqliteTraceRunsOnBothSubstrates)
{
    Trace trace = makeSqliteTrace(8);
    for (int which = 0; which < 2; which++) {
        TraceStats stats;
        bool done = false;
        auto body = [&](Vfs &vfs) -> sim::Task {
            co_await traceBody(vfs, trace, &stats, &done);
        };
        if (which == 0) {
            M3vRig rig;
            rig.run(body);
        } else {
            LinuxRig rig;
            rig.run(body);
        }
        EXPECT_TRUE(done);
        EXPECT_GT(stats.bytesWritten, 8u * 2000);
        EXPECT_GT(stats.bytesRead, 8u * 2000);
    }
}

sim::Task
kvSmokeBody(Vfs &vfs, bool *done)
{
    KvStore db(vfs);
    co_await db.open();
    // Enough data to force flushes and a compaction.
    for (int i = 0; i < 300; i++) {
        co_await db.put(ycsbKey(static_cast<std::uint64_t>(i)),
                        std::string(100, static_cast<char>(
                                             'a' + i % 26)));
    }
    EXPECT_GE(db.stats().flushes, 1u);

    // Point lookups: memtable and SST paths.
    std::string v;
    bool found = false;
    co_await db.get(ycsbKey(0), &v, &found);
    EXPECT_TRUE(found);
    EXPECT_EQ(v, std::string(100, 'a'));
    co_await db.get(ycsbKey(299), &v, &found);
    EXPECT_TRUE(found);
    co_await db.get("user99999999", &v, &found);
    EXPECT_FALSE(found);

    // Updates win over older SST values.
    co_await db.put(ycsbKey(0), "fresh");
    co_await db.get(ycsbKey(0), &v, &found);
    EXPECT_TRUE(found);
    EXPECT_EQ(v, "fresh");

    // Scans merge across memtable and tables, sorted.
    std::vector<std::pair<std::string, std::string>> out;
    co_await db.scan(ycsbKey(10), 20, &out);
    EXPECT_EQ(out.size(), 20u);
    EXPECT_EQ(out.front().first, ycsbKey(10));
    for (std::size_t i = 1; i < out.size(); i++)
        EXPECT_LT(out[i - 1].first, out[i].first);

    co_await db.close();
    *done = true;
}

TEST(KvStore, WorksOnM3fs)
{
    M3vRig rig;
    bool done = false;
    rig.run([&](Vfs &vfs) -> sim::Task {
        co_await kvSmokeBody(vfs, &done);
    });
    EXPECT_TRUE(done);
}

TEST(KvStore, WorksOnLinuxTmpfs)
{
    LinuxRig rig;
    bool done = false;
    rig.run([&](Vfs &vfs) -> sim::Task {
        co_await kvSmokeBody(vfs, &done);
    });
    EXPECT_TRUE(done);
}

TEST(KvStore, CompactionReducesTableCount)
{
    LinuxRig rig;
    bool done = false;
    rig.run([&](Vfs &vfs) -> sim::Task {
        KvParams params;
        params.memtableLimit = 2 * 1024;
        params.compactionTrigger = 3;
        KvStore db(vfs, params);
        co_await db.open();
        for (int i = 0; i < 200; i++)
            co_await db.put(ycsbKey(static_cast<std::uint64_t>(i)),
                            std::string(64, 'x'));
        EXPECT_GE(db.stats().compactions, 1u);
        EXPECT_LT(db.tableCount(), 3u + 1u);
        // Everything still readable after compaction.
        std::string v;
        bool found = false;
        co_await db.get(ycsbKey(7), &v, &found);
        EXPECT_TRUE(found);
        co_await db.close();
        done = true;
    });
    EXPECT_TRUE(done);
}

TEST(KvStore, YcsbMixedWorkloadCompletes)
{
    LinuxRig rig;
    bool done = false;
    rig.run([&](Vfs &vfs) -> sim::Task {
        YcsbConfig cfg;
        auto w = ycsbGenerate(cfg, YcsbMix::mixed());
        KvStore db(vfs);
        co_await db.open();
        for (const auto &op : w.load)
            co_await db.put(op.key, op.value);
        unsigned hits = 0;
        for (const auto &op : w.run) {
            switch (op.kind) {
              case YcsbOp::Kind::Read: {
                std::string v;
                bool found = false;
                co_await db.get(op.key, &v, &found);
                hits += found;
                break;
              }
              case YcsbOp::Kind::Insert:
              case YcsbOp::Kind::Update:
                co_await db.put(op.key, op.value);
                break;
              case YcsbOp::Kind::Scan: {
                std::vector<std::pair<std::string, std::string>> o;
                co_await db.scan(op.key, op.scanLen, &o);
                break;
              }
            }
        }
        // Reads target loaded records: they must be found.
        EXPECT_GT(hits, 0u);
        co_await db.close();
        done = true;
    });
    EXPECT_TRUE(done);
}

} // namespace
} // namespace m3v::workloads
