/**
 * @file
 * Property test: leveldb-lite against a reference std::map model
 * under randomized operation streams (puts, overwrites, gets of
 * present and absent keys, scans) across several seeds and store
 * configurations. Every get and scan must agree with the reference.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "linuxref/kernel.h"
#include "sim/rng.h"
#include "workloads/kv.h"
#include "workloads/vfs_linux.h"

namespace m3v::workloads {
namespace {

struct Config
{
    std::uint64_t seed;
    std::size_t memtableLimit;
    unsigned compactionTrigger;
    unsigned ops;
};

class KvPropertyTest : public ::testing::TestWithParam<Config>
{
};

sim::Task
randomOps(Vfs &vfs, const Config &cfg, bool *done)
{
    sim::Rng rng(cfg.seed);
    std::map<std::string, std::string> ref;

    KvParams params;
    params.memtableLimit = cfg.memtableLimit;
    params.compactionTrigger = cfg.compactionTrigger;
    KvStore db(vfs, params);
    co_await db.open();

    for (unsigned i = 0; i < cfg.ops; i++) {
        auto roll = rng.nextBounded(100);
        std::string key =
            "k" + std::to_string(rng.nextBounded(40));
        if (roll < 50) {
            // Put (insert or overwrite).
            std::string value =
                "v" + std::to_string(i) + "-" +
                std::string(rng.nextBounded(120), 'x');
            ref[key] = value;
            co_await db.put(key, value);
        } else if (roll < 85) {
            // Get (present or absent).
            std::string value;
            bool found = false;
            co_await db.get(key, &value, &found);
            auto it = ref.find(key);
            EXPECT_EQ(found, it != ref.end()) << "key " << key;
            if (found && it != ref.end()) {
                EXPECT_EQ(value, it->second) << "key " << key;
            }
        } else {
            // Scan.
            unsigned count = 1 + static_cast<unsigned>(
                                     rng.nextBounded(10));
            std::vector<std::pair<std::string, std::string>> out;
            co_await db.scan(key, count, &out);
            auto it = ref.lower_bound(key);
            for (const auto &kv : out) {
                if (it == ref.end()) {
                    ADD_FAILURE() << "scan longer than reference";
                    break;
                }
                EXPECT_EQ(kv.first, it->first);
                EXPECT_EQ(kv.second, it->second);
                ++it;
            }
            // The store must return min(count, available).
            std::size_t avail = static_cast<std::size_t>(
                std::distance(ref.lower_bound(key), ref.end()));
            EXPECT_EQ(out.size(), std::min<std::size_t>(count,
                                                        avail));
        }
    }
    co_await db.close();
    *done = true;
}

TEST_P(KvPropertyTest, MatchesReferenceModel)
{
    Config cfg = GetParam();
    sim::EventQueue eq;
    tile::Core core(eq, "c", tile::CoreModel::boom(), 0);
    linuxref::LinuxKernel kernel(eq, "k", core);
    auto *p = kernel.createProcess("kv");
    bool done = false;
    kernel.start(p, sim::invoke([&]() -> sim::Task {
        LinuxVfs vfs(kernel, *p);
        co_await randomOps(vfs, cfg, &done);
        co_await kernel.sysExit(*p);
    }));
    eq.run();
    EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, KvPropertyTest,
    ::testing::Values(Config{1, 4 * 1024, 3, 250},
                      Config{2, 2 * 1024, 2, 250},
                      Config{3, 16 * 1024, 4, 250},
                      Config{4, 1 * 1024, 5, 180},
                      Config{5, 8 * 1024, 3, 300}));

} // namespace
} // namespace m3v::workloads
