/**
 * @file
 * Tests for flac-lite (lossless round trips, compression on voice
 * audio), the audio generator and trigger scanner, the Zipfian
 * generator and the YCSB workload generator.
 */

#include <gtest/gtest.h>

#include <map>

#include "workloads/flac.h"
#include "workloads/ycsb.h"

namespace m3v::workloads {
namespace {

TEST(BitIo, RoundTrip)
{
    // (Exercised through the codec below; direct checks here.)
    Samples s = {0, 1, -1, 1000, -1000, 32767, -32768, 5, 5, 5};
    FlacFrame f = flacEncodeFrame(s.data(), s.size());
    Samples back = flacDecodeFrame(f);
    EXPECT_EQ(back, s);
}

TEST(Flac, LosslessOnVoiceAudio)
{
    AudioParams params;
    Samples audio = generateAudio(16000, params, true);
    auto frames = flacEncode(audio);
    Samples back = flacDecode(frames);
    ASSERT_EQ(back.size(), audio.size());
    EXPECT_EQ(back, audio);
}

TEST(Flac, CompressesTonalAudio)
{
    AudioParams params;
    params.noise = 0.005;
    Samples audio = generateAudio(32000, params, false);
    auto frames = flacEncode(audio);
    std::size_t raw = audio.size() * 2;
    std::size_t enc = flacBytes(frames);
    // Tonal audio compresses well below raw PCM.
    EXPECT_LT(enc, raw * 8 / 10);
    EXPECT_GT(enc, raw / 20);
}

TEST(Flac, NoisyAudioCompressesWorse)
{
    AudioParams quiet;
    quiet.noise = 0.002;
    AudioParams loud;
    loud.noise = 0.4;
    auto enc_quiet = flacBytes(flacEncode(
        generateAudio(16000, quiet, false)));
    auto enc_loud = flacBytes(flacEncode(
        generateAudio(16000, loud, false)));
    EXPECT_LT(enc_quiet, enc_loud);
}

class FlacSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FlacSweep, RoundTripAtAnyBlockSize)
{
    AudioParams params;
    params.seed = GetParam();
    Samples audio = generateAudio(5000 + GetParam() * 37, params,
                                  GetParam() % 2 == 0);
    auto frames = flacEncode(audio, 512 + GetParam() * 100);
    EXPECT_EQ(flacDecode(frames), audio);
}

INSTANTIATE_TEST_SUITE_P(Blocks, FlacSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(Audio, TriggerIsDetected)
{
    AudioParams params;
    Samples with = generateAudio(32000, params, true);
    Samples without = generateAudio(32000, params, false);
    EXPECT_TRUE(scanForTrigger(with, params.sampleRate));
    EXPECT_FALSE(scanForTrigger(without, params.sampleRate));
}

TEST(Zipf, SkewsTowardsLowRanks)
{
    sim::Rng rng(1);
    Zipfian z(100);
    std::map<std::uint64_t, unsigned> counts;
    for (int i = 0; i < 20000; i++)
        counts[z.next(rng)]++;
    // Rank 0 much more popular than rank 50.
    EXPECT_GT(counts[0], 20u * (counts[50] + 1));
    // All draws in range.
    for (auto &[rank, cnt] : counts)
        EXPECT_LT(rank, 100u);
}

TEST(Ycsb, MixProportionsRoughlyHold)
{
    YcsbConfig cfg;
    cfg.operations = 4000;
    auto w = ycsbGenerate(cfg, YcsbMix::mixed());
    EXPECT_EQ(w.load.size(), cfg.records);
    unsigned reads = 0, inserts = 0, updates = 0, scans = 0;
    for (const auto &op : w.run) {
        switch (op.kind) {
          case YcsbOp::Kind::Read: reads++; break;
          case YcsbOp::Kind::Insert: inserts++; break;
          case YcsbOp::Kind::Update: updates++; break;
          case YcsbOp::Kind::Scan: scans++; break;
        }
    }
    auto near = [&](unsigned n, unsigned pct) {
        double frac = static_cast<double>(n) / cfg.operations;
        EXPECT_NEAR(frac, pct / 100.0, 0.04);
    };
    near(reads, 50);
    near(inserts, 10);
    near(updates, 30);
    near(scans, 10);
}

TEST(Ycsb, DeterministicForSameSeed)
{
    YcsbConfig cfg;
    auto a = ycsbGenerate(cfg, YcsbMix::readHeavy());
    auto b = ycsbGenerate(cfg, YcsbMix::readHeavy());
    ASSERT_EQ(a.run.size(), b.run.size());
    for (std::size_t i = 0; i < a.run.size(); i++) {
        EXPECT_EQ(a.run[i].kind, b.run[i].kind);
        EXPECT_EQ(a.run[i].key, b.run[i].key);
    }
}

TEST(Ycsb, ScanHeavyHasScansAndNoUpdates)
{
    YcsbConfig cfg;
    cfg.operations = 1000;
    auto w = ycsbGenerate(cfg, YcsbMix::scanHeavy());
    unsigned scans = 0, updates = 0;
    for (const auto &op : w.run) {
        scans += op.kind == YcsbOp::Kind::Scan;
        updates += op.kind == YcsbOp::Kind::Update;
    }
    EXPECT_EQ(updates, 0u);
    EXPECT_GT(scans, 700u);
}

} // namespace
} // namespace m3v::workloads
