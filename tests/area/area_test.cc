/**
 * @file
 * Tests pinning the area model to Table 1 of the paper.
 */

#include <gtest/gtest.h>

#include "area/area.h"

namespace m3v::area {
namespace {

TEST(Area, VdtuTotalsMatchTable1)
{
    Component v = dtu(true);
    AreaNumbers t = v.total();
    EXPECT_NEAR(t.lutsK, 15.2, 0.01);
    EXPECT_NEAR(t.ffsK, 5.8, 0.01);
    EXPECT_NEAR(t.brams, 0.5, 0.01);
}

TEST(Area, ControlUnitAggregatesFromChildren)
{
    Component v = dtu(true);
    const Component *cu = v.find("Control Unit");
    ASSERT_NE(cu, nullptr);
    EXPECT_NEAR(cu->total().lutsK, 10.3, 0.01);
    // The paper prints 3.3k FFs for the control unit, inconsistent
    // with its children (1.5 + 2.8 = 4.3) and with the vDTU total;
    // the model reports the consistent 4.3.
    EXPECT_NEAR(cu->total().ffsK, 4.3, 0.01);
}

TEST(Area, CmdCtrlIsUnprivPlusPriv)
{
    Component v = dtu(true);
    const Component *cmd = v.find("CMD CTRL");
    ASSERT_NE(cmd, nullptr);
    EXPECT_NEAR(cmd->total().lutsK, 7.1, 0.01);
    EXPECT_NEAR(cmd->total().ffsK, 2.8, 0.01);
    EXPECT_NEAR(cmd->total().brams, 0.5, 0.01);
}

TEST(Area, VirtualizationAddsAboutSixPercentLogic)
{
    double pct = virtualizationOverheadPct();
    EXPECT_GT(pct, 5.5);
    EXPECT_LT(pct, 6.8);
}

TEST(Area, VdtuRelativeToCoresMatchesPaper)
{
    // Paper section 6.1: 10.6% of BOOM, 32.6% of Rocket.
    EXPECT_NEAR(vdtuVsCorePct(boomCore()), 10.6, 0.1);
    EXPECT_NEAR(vdtuVsCorePct(rocketCore()), 32.6, 0.1);
}

TEST(Area, PlainDtuOmitsPrivilegedInterface)
{
    Component d = dtu(false);
    EXPECT_EQ(d.find("Priv. IF"), nullptr);
    EXPECT_NEAR(d.total().lutsK, 14.3, 0.01);
}

TEST(Area, CoreNumbers)
{
    EXPECT_NEAR(boomCore().total().lutsK, 143.8, 0.01);
    EXPECT_NEAR(rocketCore().total().ffsK, 22.0, 0.01);
    EXPECT_NEAR(nocRouter().total().lutsK, 3.4, 0.01);
}

} // namespace
} // namespace m3v::area
