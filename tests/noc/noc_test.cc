/**
 * @file
 * Unit tests for the NoC: delivery, latency scaling, ordering,
 * backpressure, and topology/routing properties.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "noc/noc.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace m3v::noc {
namespace {

struct TestPayload : PacketData
{
    explicit TestPayload(int v) : value(v) {}
    int value;
};

/** A sink that records deliveries and can simulate fullness. */
struct RecordingSink : HopTarget
{
    std::vector<std::pair<sim::Tick, int>> received;
    std::vector<bool> corruptFlags;
    sim::EventQueue *eq = nullptr;
    bool full = false;
    std::vector<sim::UniqueFunction<void()>> waiters;

    bool
    acceptPacket(Packet &pkt, sim::UniqueFunction<void()> on_space) override
    {
        if (full) {
            waiters.push_back(std::move(on_space));
            return false;
        }
        auto *p = dynamic_cast<TestPayload *>(pkt.data.get());
        received.emplace_back(eq->now(), p ? p->value : -1);
        corruptFlags.push_back(pkt.corrupted);
        Packet consumed = std::move(pkt);
        return true;
    }

    void
    unblock()
    {
        full = false;
        auto w = std::move(waiters);
        waiters.clear();
        for (auto &cb : w)
            cb();
    }
};

Packet
makePacket(TileId src, TileId dst, std::size_t bytes, int tag)
{
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.bytes = bytes;
    pkt.data = std::make_unique<TestPayload>(tag);
    return pkt;
}

class NocTest : public ::testing::Test
{
  protected:
    void
    build(unsigned tiles, NocParams params = {})
    {
        noc = std::make_unique<Noc>(eq, params);
        sinks.resize(tiles);
        for (unsigned i = 0; i < tiles; i++) {
            sinks[i] = std::make_unique<RecordingSink>();
            sinks[i]->eq = &eq;
            noc->attachTile(i, sinks[i].get());
        }
        noc->finalize();
    }

    void
    send(TileId src, TileId dst, std::size_t bytes, int tag)
    {
        Packet pkt = makePacket(src, dst, bytes, tag);
        ASSERT_TRUE(noc->inject(pkt, []() {}));
    }

    /** Inject honouring backpressure: retry whenever space frees. */
    void
    sendRetry(TileId src, TileId dst, std::size_t bytes, int tag)
    {
        auto pkt = std::make_shared<Packet>(
            makePacket(src, dst, bytes, tag));
        auto attempt = std::make_shared<std::function<void()>>();
        retries_.push_back(attempt); // owner: avoids a self-cycle
        std::weak_ptr<std::function<void()>> weak = attempt;
        *attempt = [this, pkt, weak]() {
            noc->inject(*pkt, [weak]() {
                if (auto fn = weak.lock())
                    (*fn)();
            });
        };
        (*attempt)();
    }

    std::vector<std::shared_ptr<std::function<void()>>> retries_;

    sim::EventQueue eq;
    std::unique_ptr<Noc> noc;
    std::vector<std::unique_ptr<RecordingSink>> sinks;
};

TEST_F(NocTest, DeliversToDestination)
{
    build(4);
    send(0, 3, 64, 42);
    eq.run();
    ASSERT_EQ(sinks[3]->received.size(), 1u);
    EXPECT_EQ(sinks[3]->received[0].second, 42);
    EXPECT_EQ(noc->delivered(), 1u);
    for (unsigned i = 0; i < 3; i++)
        EXPECT_TRUE(sinks[i]->received.empty());
}

TEST_F(NocTest, LatencyIsDozensOfNanoseconds)
{
    // The paper quotes "dozens of nanoseconds" tile-to-tile latency.
    build(8);
    send(0, 5, 16, 1);
    eq.run();
    ASSERT_EQ(sinks[5]->received.size(), 1u);
    sim::Tick t = sinks[5]->received[0].first;
    EXPECT_GE(t, 20 * sim::kTicksPerNs);
    EXPECT_LE(t, 300 * sim::kTicksPerNs);
}

TEST_F(NocTest, MoreHopsMoreLatency)
{
    build(8);
    // Tiles 0..7 round-robin over 4 routers: tile 0 -> r0, tile 4 ->
    // r0, tile 3 -> r3. Same-router vs diagonal-router latency.
    send(0, 4, 16, 1);
    eq.run();
    sim::Tick same_router = sinks[4]->received[0].first;

    sim::Tick start = eq.now();
    send(0, 3, 16, 2);
    eq.run();
    sim::Tick diagonal = sinks[3]->received[0].first - start;
    EXPECT_GT(diagonal, same_router);
    EXPECT_EQ(noc->hopCount(0, 4), 0u);
    EXPECT_EQ(noc->hopCount(0, 3), 2u);
}

TEST_F(NocTest, BiggerPacketsTakeLonger)
{
    build(4);
    send(0, 1, 16, 1);
    eq.run();
    sim::Tick small = sinks[1]->received[0].first;
    sim::Tick start = eq.now();
    send(0, 1, 4096, 2);
    eq.run();
    sim::Tick big = sinks[1]->received[1].first - start;
    EXPECT_GT(big, small);
    // 4096 bytes at 16 B/cycle @ 100 MHz is 2.56us of serialization.
    EXPECT_GE(big, 2 * sim::kTicksPerUs);
}

TEST_F(NocTest, SameFlowStaysOrdered)
{
    build(4);
    for (int i = 0; i < 10; i++)
        sendRetry(0, 2, 64, i);
    eq.run();
    ASSERT_EQ(sinks[2]->received.size(), 10u);
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(sinks[2]->received[static_cast<size_t>(i)].second, i);
}

TEST_F(NocTest, BackpressureHoldsPacketsUntilSinkDrains)
{
    build(4);
    sinks[1]->full = true;
    for (int i = 0; i < 3; i++)
        send(0, 1, 32, i);
    eq.run();
    EXPECT_TRUE(sinks[1]->received.empty());
    sinks[1]->unblock();
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 3u);
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(sinks[1]->received[static_cast<size_t>(i)].second, i);
}

TEST_F(NocTest, InjectionBackpressureReportsFullness)
{
    build(4);
    sinks[1]->full = true;
    // Fill: 4 in the injection queue and more stuck downstream.
    int accepted = 0, rejected = 0;
    int resumed = 0;
    for (int i = 0; i < 32; i++) {
        Packet pkt = makePacket(0, 1, 64, i);
        if (noc->inject(pkt, [&]() { resumed++; })) {
            accepted++;
        } else {
            rejected++;
        }
        eq.run();
    }
    EXPECT_GT(rejected, 0);
    EXPECT_GT(accepted, 3);
    sinks[1]->unblock();
    eq.run();
    EXPECT_GT(resumed, 0);
}

TEST_F(NocTest, ManyToOneAllArrive)
{
    build(12);
    for (unsigned src = 1; src < 12; src++)
        for (int k = 0; k < 5; k++)
            sendRetry(src, 0, 128, static_cast<int>(src * 100) + k);
    eq.run();
    EXPECT_EQ(sinks[0]->received.size(), 55u);
    EXPECT_EQ(noc->delivered(), 55u);
}

TEST_F(NocTest, SelfSendDeliversLocally)
{
    // A DTU may send to an endpoint on its own tile (transparent
    // multiplexing sends tile-local messages through the fabric too).
    build(4);
    send(2, 2, 64, 9);
    eq.run();
    ASSERT_EQ(sinks[2]->received.size(), 1u);
    EXPECT_EQ(sinks[2]->received[0].second, 9);
}

TEST_F(NocTest, DeliveredBytesAccumulate)
{
    build(4);
    send(0, 1, 100, 1);
    send(1, 2, 200, 2);
    eq.run();
    EXPECT_EQ(noc->deliveredBytes(), 300u);
}

TEST_F(NocTest, HopCountIsManhattanAndSymmetric)
{
    // Default mesh is 2x2; tiles are spread round-robin, so tile i
    // sits on router i % 4 at (x, y) = (r % 2, r / 2).
    build(8);
    for (TileId a = 0; a < 8; a++) {
        EXPECT_EQ(noc->hopCount(a, a), 0u);
        for (TileId b = 0; b < 8; b++) {
            unsigned ra = a % 4, rb = b % 4;
            unsigned manhattan =
                (ra % 2 > rb % 2 ? ra % 2 - rb % 2 : rb % 2 - ra % 2) +
                (ra / 2 > rb / 2 ? ra / 2 - rb / 2 : rb / 2 - ra / 2);
            EXPECT_EQ(noc->hopCount(a, b), manhattan);
            EXPECT_EQ(noc->hopCount(a, b), noc->hopCount(b, a));
        }
    }
}

TEST_F(NocTest, OnSpaceFiresExactlyOncePerRejectedInject)
{
    build(4);
    sinks[1]->full = true;
    // Fill the injection port and everything downstream.
    while (true) {
        Packet pkt = makePacket(0, 1, 64, 0);
        if (!noc->inject(pkt, []() {}))
            break;
        eq.run();
    }
    // The next rejected inject registers a waiter that must fire
    // exactly once, even though many packets drain afterwards.
    int fired = 0;
    Packet pkt = makePacket(0, 1, 64, 1);
    ASSERT_FALSE(noc->inject(pkt, [&]() { fired++; }));
    sinks[1]->unblock();
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST_F(NocTest, DropFaultsRemovePacketsAndAreCounted)
{
    sim::FaultPlan plan(11);
    plan.addDrop("noc.tile0.inj", 1.0);
    NocParams params;
    params.faults = &plan;
    build(4, params);
    for (int i = 0; i < 3; i++)
        send(0, 1, 64, i);
    send(2, 1, 64, 99); // unaffected site
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 1u);
    EXPECT_EQ(sinks[1]->received[0].second, 99);
    EXPECT_EQ(plan.drops().value(), 3u);
    EXPECT_EQ(noc->delivered(), 1u);
}

TEST_F(NocTest, DroppedPacketsFreeTheirQueueSlot)
{
    // A lossy link must not wedge the port: packets behind a dropped
    // one keep flowing and blocked senders are woken.
    sim::FaultPlan plan(12);
    plan.addDrop("", 1.0, 0, 1); // drop everything in the first tick
    NocParams params;
    params.faults = &plan;
    build(4, params);
    for (int i = 0; i < 20; i++)
        sendRetry(0, 1, 256, i);
    eq.run();
    EXPECT_GT(plan.drops().value(), 0u);
    EXPECT_EQ(sinks[1]->received.size() + plan.drops().value(), 20u);
}

TEST_F(NocTest, CorruptFaultsDeliverMarkedPackets)
{
    sim::FaultPlan plan(13);
    plan.addCorrupt("noc.tile0.inj", 1.0);
    NocParams params;
    params.faults = &plan;
    build(4, params);
    send(0, 1, 64, 7);
    send(2, 1, 64, 8);
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 2u);
    for (std::size_t i = 0; i < 2; i++) {
        bool is_faulty = sinks[1]->received[i].second == 7;
        EXPECT_EQ(sinks[1]->corruptFlags[i], is_faulty);
    }
    EXPECT_EQ(plan.corrupts().value(), 1u);
}

TEST_F(NocTest, DelayFaultsPostponeDelivery)
{
    sim::Tick clean_t;
    {
        sim::EventQueue ceq;
        Noc cnoc(ceq, NocParams{});
        RecordingSink s0, s1;
        s1.eq = &ceq;
        cnoc.attachTile(0, &s0);
        cnoc.attachTile(1, &s1);
        cnoc.finalize();
        Packet pkt = makePacket(0, 1, 64, 1);
        ASSERT_TRUE(cnoc.inject(pkt, []() {}));
        ceq.run();
        ASSERT_EQ(s1.received.size(), 1u);
        clean_t = s1.received[0].first;
    }
    sim::FaultPlan plan(14);
    plan.addDelay("", 1.0, 500);
    NocParams params;
    params.faults = &plan;
    build(4, params);
    send(0, 1, 64, 1);
    eq.run();
    ASSERT_EQ(sinks[1]->received.size(), 1u);
    EXPECT_GT(sinks[1]->received[0].first, clean_t);
    EXPECT_GT(plan.delays().value(), 0u);
}

TEST_F(NocTest, WindowlessPlanLeavesTimingUntouched)
{
    // Handing a plan with no windows to the NoC must not change
    // delivery times relative to no plan at all.
    build(4);
    send(0, 3, 128, 1);
    eq.run();
    sim::Tick base_t = sinks[3]->received[0].first;

    sim::EventQueue eq2;
    sim::FaultPlan plan(15);
    NocParams params;
    params.faults = &plan;
    Noc noc2(eq2, params);
    std::vector<std::unique_ptr<RecordingSink>> sinks2;
    for (unsigned i = 0; i < 4; i++) {
        sinks2.push_back(std::make_unique<RecordingSink>());
        sinks2.back()->eq = &eq2;
        noc2.attachTile(i, sinks2.back().get());
    }
    noc2.finalize();
    Packet pkt = makePacket(0, 3, 128, 1);
    ASSERT_TRUE(noc2.inject(pkt, []() {}));
    eq2.run();
    ASSERT_EQ(sinks2[3]->received.size(), 1u);
    EXPECT_EQ(sinks2[3]->received[0].first, base_t);
}

class NocMeshParamTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(NocMeshParamTest, AllPairsDeliverOnArbitraryMeshes)
{
    auto [cols, tiles] = GetParam();
    sim::EventQueue eq;
    NocParams params;
    params.meshCols = cols;
    params.meshRows = 2;
    Noc noc(eq, params);
    std::vector<std::unique_ptr<RecordingSink>> sinks(tiles);
    for (unsigned i = 0; i < tiles; i++) {
        sinks[i] = std::make_unique<RecordingSink>();
        sinks[i]->eq = &eq;
        noc.attachTile(i, sinks[i].get());
    }
    noc.finalize();

    unsigned expected = 0;
    for (unsigned s = 0; s < tiles; s++) {
        for (unsigned d = 0; d < tiles; d++) {
            if (s == d)
                continue;
            Packet pkt = makePacket(s, d, 32,
                                    static_cast<int>(s * 1000 + d));
            ASSERT_TRUE(noc.inject(pkt, []() {}));
            eq.run();
            expected++;
        }
    }
    EXPECT_EQ(noc.delivered(), expected);
}

INSTANTIATE_TEST_SUITE_P(Meshes, NocMeshParamTest,
    ::testing::Values(std::make_tuple(2u, 4u), std::make_tuple(2u, 11u),
                      std::make_tuple(3u, 9u), std::make_tuple(4u, 16u),
                      std::make_tuple(1u, 3u)));

} // namespace
} // namespace m3v::noc
