/**
 * @file
 * Tests for the generalized k-ary 2D mesh fabric: XY route
 * enumeration against the installed routing tables (cycle-free,
 * minimal hops, dimension-ordered, wraparound-aware), per-hop credit
 * exhaustion and backpressure, the typed configuration errors of
 * Noc::validate(), NocParams::forTiles() sizing, and a 64-tile
 * chaos-parallel run on the router lane plan that must be
 * digest-identical for jobs in {1, 2, 4}.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "noc/noc.h"
#include "sim/event_queue.h"
#include "sim/lane.h"

namespace m3v::noc {
namespace {

struct TestPayload : PacketData
{
    explicit TestPayload(int v) : value(v) {}
    int value;
};

Packet
makePacket(TileId src, TileId dst, std::size_t bytes, int tag)
{
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.bytes = bytes;
    pkt.data = std::make_unique<TestPayload>(tag);
    return pkt;
}

/** Null sink for topology-only tests. */
struct DropSink : HopTarget
{
    bool
    acceptPacket(Packet &pkt, sim::UniqueFunction<void()>) override
    {
        Packet consumed = std::move(pkt);
        return true;
    }
};

/**
 * Build a classic (single-queue) fabric of @p params with one tile
 * per router (tile i lands on router i round-robin) and walk the
 * installed routing tables from every router to every tile.
 */
void
enumerateRoutes(NocParams params)
{
    unsigned n = params.meshCols * params.meshRows;
    sim::EventQueue eq;
    Noc noc(eq, params);
    std::vector<DropSink> sinks(n);
    for (unsigned i = 0; i < n; i++)
        ASSERT_EQ(noc.attachTile(i, &sinks[i]), i);
    noc.finalize();
    for (TileId dst = 0; dst < n; dst++) {
        unsigned home = dst % n;
        for (unsigned start = 0; start < n; start++) {
            std::set<unsigned> visited{start};
            unsigned cur = start;
            unsigned hops = 0;
            bool x_done =
                cur % params.meshCols == home % params.meshCols;
            while (cur != home) {
                unsigned next = noc.routeStep(cur, dst);
                ASSERT_NE(next, cur)
                    << "stuck at router " << cur << " for tile "
                    << dst;
                ASSERT_TRUE(visited.insert(next).second)
                    << "routing cycle at router " << next
                    << " for tile " << dst;
                // Dimension order: once the X coordinate matches the
                // destination's, it never changes again.
                if (x_done)
                    ASSERT_EQ(next % params.meshCols,
                              home % params.meshCols)
                        << "Y leg left the column for tile " << dst;
                x_done = next % params.meshCols ==
                         home % params.meshCols;
                cur = next;
                hops++;
                ASSERT_LE(hops, n) << "unbounded route for tile "
                                   << dst;
            }
            // The walked route is exactly the shortest path.
            EXPECT_EQ(hops, noc.hopCount(start, dst))
                << "router " << start << " -> tile " << dst;
            // At the home router the route is the exit port.
            EXPECT_EQ(noc.routeStep(home, dst), home);
        }
    }
}

TEST(MeshTopologyTest, XyRoutesMinimalAndCycleFree4x4)
{
    NocParams p;
    p.meshCols = p.meshRows = 4;
    enumerateRoutes(p);
}

TEST(MeshTopologyTest, XyRoutesMinimalAndCycleFree8x8)
{
    NocParams p;
    p.meshCols = p.meshRows = 8;
    enumerateRoutes(p);
}

TEST(MeshTopologyTest, TorusRoutesTakeTheShorterWayAround)
{
    NocParams p;
    p.meshCols = p.meshRows = 4;
    p.wraparound = true;
    enumerateRoutes(p);

    // Spot-check the wrap effect: opposite corners of a 4x4 torus
    // are 2 hops apart (1 wrap hop per dimension), not 6.
    sim::EventQueue eq;
    Noc noc(eq, p);
    std::vector<DropSink> sinks(16);
    for (unsigned i = 0; i < 16; i++)
        noc.attachTile(i, &sinks[i]);
    noc.finalize();
    EXPECT_EQ(noc.hopCount(0, 15), 2u);
    EXPECT_EQ(noc.hopCount(0, 3), 1u);
    EXPECT_EQ(noc.hopCount(0, 12), 1u);
}

TEST(MeshTopologyTest, ForTilesSizesSquareMeshes)
{
    EXPECT_EQ(NocParams::forTiles(5).meshCols, 2u);
    EXPECT_EQ(NocParams::forTiles(64).meshCols, 4u);
    EXPECT_EQ(NocParams::forTiles(64).meshRows, 4u);
    EXPECT_EQ(NocParams::forTiles(256).meshCols, 8u);
    EXPECT_EQ(NocParams::forTiles(1024).meshCols, 16u);
    EXPECT_EQ(NocParams::forTiles(1024).meshRows, 16u);
}

TEST(MeshConfigTest, OverSubscribedRouterIsTypedError)
{
    NocParams p;
    p.maxTilesPerRouter = 1;
    sim::EventQueue eq;
    Noc noc(eq, p); // 2x2: capacity 4 tiles
    std::vector<DropSink> sinks(5);
    for (unsigned i = 0; i < 5; i++)
        noc.attachTile(i, &sinks[i]);
    EXPECT_EQ(noc.validate(),
              NocConfigError::TooManyTilesPerRouter);
    EXPECT_DEATH(noc.finalize(), "too many tiles");
}

TEST(MeshConfigTest, DuplicateTileIsTypedError)
{
    NocParams p;
    sim::EventQueue eq;
    Noc noc(eq, p);
    DropSink a, b;
    noc.attachTile(3, &a);
    noc.attachTile(3, &b);
    EXPECT_EQ(noc.validate(), NocConfigError::DuplicateTile);
    EXPECT_DEATH(noc.finalize(), "duplicate tile");
}

TEST(MeshConfigTest, ValidTopologyReportsNone)
{
    NocParams p;
    sim::EventQueue eq;
    Noc noc(eq, p);
    std::vector<DropSink> sinks(8);
    for (unsigned i = 0; i < 8; i++)
        noc.attachTile(i, &sinks[i]);
    EXPECT_EQ(noc.validate(), NocConfigError::None);
    noc.finalize();
}

/**
 * Funnel traffic from every tile into one destination through a
 * fabric with single-packet port queues: per-hop credits must
 * exhaust (stalls observed) yet every packet must still arrive.
 */
TEST(MeshBackpressureTest, CreditExhaustionStallsButDelivers)
{
    NocParams p;
    p.meshCols = p.meshRows = 4;
    p.portQueuePackets = 1;
    constexpr unsigned kTiles = 16;
    constexpr int kShots = 8; // per source tile, all into tile 0

    sim::EventQueue eq;
    Noc noc(eq, p);
    std::vector<DropSink> sinks(kTiles);
    for (unsigned i = 0; i < kTiles; i++)
        noc.attachTile(i, &sinks[i]);
    noc.finalize();

    auto retries = std::make_shared<
        std::vector<std::shared_ptr<std::function<void()>>>>();
    for (unsigned t = 1; t < kTiles; t++) {
        for (int s = 0; s < kShots; s++) {
            eq.schedule(static_cast<sim::Tick>(s), [&noc, t, s,
                                                    retries]() {
                auto pkt = std::make_shared<Packet>(makePacket(
                    t, 0, 128, static_cast<int>(t) * 100 + s));
                auto fn =
                    std::make_shared<std::function<void()>>();
                retries->push_back(fn);
                std::weak_ptr<std::function<void()>> weak = fn;
                *fn = [&noc, pkt, weak]() {
                    noc.inject(*pkt, [weak]() {
                        if (auto f = weak.lock())
                            (*f)();
                    });
                };
                (*fn)();
            });
        }
    }
    eq.run();
    EXPECT_EQ(noc.delivered(), (kTiles - 1) * kShots);
    EXPECT_GT(noc.portStalls(), 0u);
}

/** Delivery-recording sink that folds into an order-sensitive
 *  digest (FNV-1a over tick/tag pairs). */
struct DigestSink : HopTarget
{
    sim::EventQueue *eq = nullptr;
    std::uint64_t digest = 1469598103934665603ull;
    std::uint64_t count = 0;

    bool
    acceptPacket(Packet &pkt, sim::UniqueFunction<void()>) override
    {
        auto *p = dynamic_cast<TestPayload *>(pkt.data.get());
        std::uint64_t v = eq->now() * 1000003ull +
                          static_cast<std::uint64_t>(
                              p ? p->value : -1);
        digest = (digest ^ v) * 1099511628211ull;
        count++;
        Packet consumed = std::move(pkt);
        return true;
    }
};

/**
 * 64 tiles on a 4x4 router-sharded mesh under heavy cross-traffic
 * with tiny queues (constant backpressure and retries): the final
 * per-tile digests must be identical for every worker count.
 */
std::pair<std::uint64_t, std::uint64_t>
runChaosMesh(unsigned jobs)
{
    constexpr unsigned kTiles = 64;
    constexpr unsigned kShots = 12; // per tile
    NocParams p = NocParams::forTiles(kTiles);
    p.portQueuePackets = 2;
    unsigned routers = p.meshCols * p.meshRows;

    sim::Tick min_link = Noc::minLinkLatency(p);
    sim::LaneScheduler sched(routers, jobs, min_link,
                             /*mailbox_capacity=*/4);
    sched.fillPairLookaheads(sim::LaneScheduler::kNoCrossing);
    Noc noc(sched.lane(0), p);
    std::vector<unsigned> lane_of_router(routers);
    for (unsigned r = 0; r < routers; r++)
        lane_of_router[r] = r;
    noc.setRouterLanePlan(sched, std::move(lane_of_router));

    std::vector<std::unique_ptr<DigestSink>> sinks(kTiles);
    for (unsigned i = 0; i < kTiles; i++) {
        sinks[i] = std::make_unique<DigestSink>();
        unsigned r = noc.attachTile(i, sinks[i].get());
        sinks[i]->eq = &sched.lane(noc.laneOfRouter(r));
    }
    noc.finalize();

    std::vector<std::shared_ptr<std::function<void()>>> keep;
    keep.reserve(kTiles * kShots);
    std::uint64_t x = 88172645463325252ull;
    for (unsigned t = 0; t < kTiles; t++) {
        sim::EventQueue &teq =
            sched.lane(noc.laneOfRouter(t % routers));
        for (unsigned s = 0; s < kShots; s++) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            TileId dst = static_cast<TileId>(
                (t + 1 + x % (kTiles - 1)) % kTiles);
            if (dst == t)
                dst = (t + 1) % kTiles;
            sim::Tick at =
                static_cast<sim::Tick>(s) * 400 + x % 97;
            std::size_t bytes = 16 + x % 240;
            int tag = static_cast<int>(t * 1000 + s);
            auto fn = std::make_shared<std::function<void()>>();
            keep.push_back(fn);
            std::weak_ptr<std::function<void()>> weak = fn;
            *fn = [&noc, t, dst, bytes, tag, weak]() {
                auto pkt = std::make_shared<Packet>(
                    makePacket(t, dst, bytes, tag));
                noc.inject(*pkt, [weak]() {
                    if (auto f = weak.lock())
                        (*f)();
                });
            };
            teq.schedule(at, [weak]() {
                if (auto f = weak.lock())
                    (*f)();
            });
        }
    }
    sched.run();

    std::uint64_t digest = 1469598103934665603ull;
    std::uint64_t delivered = 0;
    for (unsigned i = 0; i < kTiles; i++) {
        digest = (digest ^ sinks[i]->digest) * 1099511628211ull;
        delivered += sinks[i]->count;
    }
    return {digest, delivered};
}

TEST(MeshChaosTest, SixtyFourTilesDigestIdenticalAcrossJobs)
{
    auto ref = runChaosMesh(1);
    EXPECT_EQ(ref.second, 64u * 12u);
    for (unsigned jobs : {2u, 4u}) {
        auto got = runChaosMesh(jobs);
        EXPECT_EQ(got.first, ref.first) << "jobs=" << jobs;
        EXPECT_EQ(got.second, ref.second) << "jobs=" << jobs;
    }
}

} // namespace
} // namespace m3v::noc
