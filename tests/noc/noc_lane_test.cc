/**
 * @file
 * Tests for the sharded NoC: per-tile event lanes with LaneLink
 * crossings at the tile<->router boundary.
 *
 * The key properties verified here:
 *  - uncongested traffic through the sharded fabric is delivered at
 *    exactly the same ticks as through the classic single-queue
 *    fabric (the launch-early carve-out preserves timing);
 *  - results are bit-identical across worker counts, congested or
 *    not;
 *  - fault injection under a lane plan is deterministic across
 *    worker counts (per-site RNG streams, per-site counters).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "noc/noc.h"
#include "sim/event_queue.h"
#include "sim/fault.h"
#include "sim/lane.h"

namespace m3v::noc {
namespace {

struct TestPayload : PacketData
{
    explicit TestPayload(int v) : value(v) {}
    int value;
};

/** Records (tick, tag, corrupted) of every delivery. */
struct RecordingSink : HopTarget
{
    sim::EventQueue *eq = nullptr;

    struct Delivery
    {
        sim::Tick tick;
        int tag;
        bool corrupted;

        bool
        operator==(const Delivery &o) const
        {
            return tick == o.tick && tag == o.tag &&
                   corrupted == o.corrupted;
        }

        friend std::ostream &
        operator<<(std::ostream &os, const Delivery &d)
        {
            return os << "{t=" << d.tick << " tag=" << d.tag
                      << (d.corrupted ? " corrupt" : "") << "}";
        }
    };
    std::vector<Delivery> received;

    bool
    acceptPacket(Packet &pkt,
                 sim::UniqueFunction<void()> on_space) override
    {
        (void)on_space;
        auto *p = dynamic_cast<TestPayload *>(pkt.data.get());
        received.push_back(
            {eq->now(), p ? p->value : -1, pkt.corrupted});
        Packet consumed = std::move(pkt);
        return true;
    }
};

Packet
makePacket(TileId src, TileId dst, std::size_t bytes, int tag)
{
    Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.bytes = bytes;
    pkt.data = std::make_unique<TestPayload>(tag);
    return pkt;
}

/** One injection request of a traffic schedule. */
struct Shot
{
    sim::Tick at;
    TileId src;
    TileId dst;
    std::size_t bytes;
    int tag;
};

/** A deterministic pseudo-random schedule (no global RNG). */
std::vector<Shot>
makeSchedule(unsigned tiles, unsigned shots, sim::Tick spacing)
{
    std::vector<Shot> out;
    std::uint64_t x = 88172645463325252ull;
    for (unsigned i = 0; i < shots; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Shot s;
        s.src = static_cast<TileId>(i % tiles);
        s.dst = static_cast<TileId>((i + 1 + x % (tiles - 1)) % tiles);
        if (s.dst == s.src)
            s.dst = (s.src + 1) % tiles;
        s.at = static_cast<sim::Tick>(i / tiles) * spacing +
               (x % 97) * 11;
        s.bytes = 16 + x % 240;
        s.tag = static_cast<int>(i);
        out.push_back(s);
    }
    return out;
}

struct RunResult
{
    std::vector<std::vector<RecordingSink::Delivery>> bySink;
    std::uint64_t delivered = 0;
    std::uint64_t deliveredBytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t corrupts = 0;

    bool
    operator==(const RunResult &o) const
    {
        return bySink == o.bySink && delivered == o.delivered &&
               deliveredBytes == o.deliveredBytes &&
               drops == o.drops && corrupts == o.corrupts;
    }
};

/** Per-delivery comparison with readable failure output. */
void
expectSameResult(const RunResult &got, const RunResult &want,
                 const std::string &label)
{
    EXPECT_EQ(got.delivered, want.delivered) << label;
    EXPECT_EQ(got.deliveredBytes, want.deliveredBytes) << label;
    EXPECT_EQ(got.drops, want.drops) << label;
    EXPECT_EQ(got.corrupts, want.corrupts) << label;
    ASSERT_EQ(got.bySink.size(), want.bySink.size()) << label;
    for (std::size_t s = 0; s < got.bySink.size(); s++) {
        EXPECT_EQ(got.bySink[s], want.bySink[s])
            << label << " sink=" << s;
    }
}

/** Run a schedule through the classic single-queue fabric. */
RunResult
runSequential(unsigned tiles, const std::vector<Shot> &shots,
              NocParams params, sim::FaultPlan *plan = nullptr)
{
    params.faults = plan;
    sim::EventQueue eq;
    Noc noc(eq, params);
    std::vector<std::unique_ptr<RecordingSink>> sinks(tiles);
    for (unsigned i = 0; i < tiles; i++) {
        sinks[i] = std::make_unique<RecordingSink>();
        sinks[i]->eq = &eq;
        noc.attachTile(i, sinks[i].get());
    }
    noc.finalize();
    // Injection honours backpressure via retry-on-space.
    auto retries = std::make_shared<
        std::vector<std::shared_ptr<std::function<void()>>>>();
    for (const Shot &s : shots) {
        eq.schedule(s.at, [&noc, s, retries]() {
            auto pkt = std::make_shared<Packet>(
                makePacket(s.src, s.dst, s.bytes, s.tag));
            auto attempt = std::make_shared<std::function<void()>>();
            retries->push_back(attempt);
            std::weak_ptr<std::function<void()>> weak = attempt;
            *attempt = [&noc, pkt, weak]() {
                noc.inject(*pkt, [weak]() {
                    if (auto fn = weak.lock())
                        (*fn)();
                });
            };
            (*attempt)();
        });
    }
    eq.run();
    RunResult r;
    for (auto &s : sinks)
        r.bySink.push_back(s->received);
    r.delivered = noc.delivered();
    r.deliveredBytes = noc.deliveredBytes();
    if (plan) {
        r.drops = plan->drops().value();
        r.corrupts = plan->corrupts().value();
    }
    return r;
}

/** Run the same schedule through the sharded fabric. */
RunResult
runLaned(unsigned tiles, const std::vector<Shot> &shots,
         NocParams params, unsigned jobs,
         sim::FaultPlan *plan = nullptr)
{
    params.faults = plan;
    sim::Tick lookahead = Noc::minLinkLatency(params);
    unsigned noc_lane = tiles;
    sim::LaneScheduler sched(tiles + 1, jobs, lookahead);
    Noc noc(sched.lane(noc_lane), params);
    std::vector<unsigned> lane_of_tile(tiles);
    for (unsigned i = 0; i < tiles; i++)
        lane_of_tile[i] = i;
    noc.setLanePlan(sched, lane_of_tile, noc_lane);
    std::vector<std::unique_ptr<RecordingSink>> sinks(tiles);
    for (unsigned i = 0; i < tiles; i++) {
        sinks[i] = std::make_unique<RecordingSink>();
        sinks[i]->eq = &sched.lane(i);
        noc.attachTile(i, sinks[i].get());
    }
    noc.finalize();
    // One retry-keeper vector per source tile: each is touched only
    // from that tile's lane (injection and on_space both run there).
    std::vector<std::shared_ptr<
        std::vector<std::shared_ptr<std::function<void()>>>>>
        laneRetries(tiles);
    for (unsigned i = 0; i < tiles; i++)
        laneRetries[i] = std::make_shared<
            std::vector<std::shared_ptr<std::function<void()>>>>();
    for (const Shot &s : shots) {
        auto retries = laneRetries[s.src];
        sched.lane(s.src).schedule(s.at, [&noc, s, retries]() {
            auto pkt = std::make_shared<Packet>(
                makePacket(s.src, s.dst, s.bytes, s.tag));
            auto attempt = std::make_shared<std::function<void()>>();
            retries->push_back(attempt);
            std::weak_ptr<std::function<void()>> weak = attempt;
            *attempt = [&noc, pkt, weak]() {
                noc.inject(*pkt, [weak]() {
                    if (auto fn = weak.lock())
                        (*fn)();
                });
            };
            (*attempt)();
        });
    }
    sched.run();
    RunResult r;
    for (auto &s : sinks)
        r.bySink.push_back(s->received);
    r.delivered = noc.delivered();
    r.deliveredBytes = noc.deliveredBytes();
    if (plan) {
        r.drops = plan->drops().value();
        r.corrupts = plan->corrupts().value();
    }
    return r;
}

TEST(NocLaneTest, UncongestedMatchesSequentialExactly)
{
    // Fully serialized traffic: at most one packet in flight at a
    // time, so no two packets ever contend for a port and no
    // same-tick arbitration ties exist. In this regime the sharded
    // fabric must reproduce the sequential delivery ticks bit for
    // bit (the launch-early carve-out preserves lone-packet timing).
    constexpr unsigned kTiles = 6;
    auto shots = makeSchedule(kTiles, 60, 0);
    for (std::size_t i = 0; i < shots.size(); i++)
        shots[i].at = static_cast<sim::Tick>(i) * 2'000'000;
    NocParams params;
    auto seq = runSequential(kTiles, shots, params);
    ASSERT_EQ(seq.delivered, 60u);
    for (unsigned jobs : {1u, 2u, 4u}) {
        auto lan = runLaned(kTiles, shots, params, jobs);
        expectSameResult(lan, seq,
                         "jobs=" + std::to_string(jobs));
    }
}

TEST(NocLaneTest, CongestedIsInvariantAcrossJobs)
{
    // Bursts into shared destinations: queues fill, credits and the
    // rx relay engage. Retry interleaving may differ from the
    // sequential fabric, but must be identical for every worker
    // count (the determinism contract of lane mode).
    constexpr unsigned kTiles = 6;
    auto shots = makeSchedule(kTiles, 240, 200);
    NocParams params;
    params.portQueuePackets = 2;
    auto ref = runLaned(kTiles, shots, params, 1);
    EXPECT_EQ(ref.delivered, 240u);
    for (unsigned jobs : {2u, 4u, 8u}) {
        auto got = runLaned(kTiles, shots, params, jobs);
        EXPECT_EQ(got, ref) << "jobs=" << jobs;
    }
}

TEST(NocLaneTest, FaultInjectionDeterministicAcrossJobs)
{
    constexpr unsigned kTiles = 4;
    auto shots = makeSchedule(kTiles, 120, 5'000);
    NocParams params;
    auto run = [&](unsigned jobs) {
        sim::FaultPlan plan(1234);
        plan.addDrop("noc.", 0.10);
        plan.addCorrupt("noc.", 0.10);
        return runLaned(kTiles, shots, params, jobs, &plan);
    };
    auto ref = run(1);
    EXPECT_GT(ref.drops, 0u);
    EXPECT_GT(ref.corrupts, 0u);
    EXPECT_EQ(ref.delivered + ref.drops, 120u);
    for (unsigned jobs : {2u, 4u}) {
        auto got = run(jobs);
        EXPECT_EQ(got, ref) << "jobs=" << jobs;
    }
}

TEST(NocLaneTest, LaneModeCountsPerTileDeliveries)
{
    constexpr unsigned kTiles = 4;
    auto shots = makeSchedule(kTiles, 40, 20'000);
    NocParams params;
    auto lan = runLaned(kTiles, shots, params, 2);
    std::uint64_t by_sink = 0;
    for (const auto &v : lan.bySink)
        by_sink += v.size();
    EXPECT_EQ(lan.delivered, by_sink);
    EXPECT_EQ(lan.delivered, 40u);
}

} // namespace
} // namespace m3v::noc
