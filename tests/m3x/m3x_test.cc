/**
 * @file
 * Tests for the M3x baseline: slow-path RPC between co-located
 * activities (kernel-driven remote context switches), fast-path RPC
 * across tiles, and the serialization behaviour that limits
 * scalability (Figure 9).
 */

#include <gtest/gtest.h>

#include <string>

#include "m3x/system.h"

namespace m3v::m3x {
namespace {

Bytes
bytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
str(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

sim::Task
serverBody(M3xSystem &sys, M3xAct &self, M3xChan chan, int *served)
{
    for (;;) {
        Bytes req;
        MsgHdr reply_to;
        co_await sys.serveNext(self, chan, &req, &reply_to);
        (*served)++;
        co_await sys.replyTo(self, reply_to,
                             bytes("re:" + str(req)));
    }
}

sim::Task
clientBody(M3xSystem &sys, M3xAct &self, M3xChan chan,
           dtu::EpId sep, int rounds, int *completed,
           sim::Tick *per_rpc)
{
    sim::Tick t0 = sys.eventQueue().now();
    for (int i = 0; i < rounds; i++) {
        Bytes resp;
        co_await sys.rpc(self, chan, sep, bytes("ping"), &resp);
        EXPECT_EQ(str(resp), "re:ping");
        (*completed)++;
    }
    if (per_rpc)
        *per_rpc = (sys.eventQueue().now() - t0) /
                   static_cast<sim::Tick>(rounds);
    co_await sys.exit(self);
}

TEST(M3x, TileLocalRpcUsesSlowPath)
{
    sim::EventQueue eq;
    M3xParams params;
    params.userTiles = 2;
    M3xSystem sys(eq, params);

    M3xAct *client = sys.createAct(0, "client");
    M3xAct *server = sys.createAct(0, "server");
    M3xChan chan = sys.makeChannel(server);
    dtu::EpId sep = sys.addSender(chan, client);

    int served = 0, completed = 0;
    sim::Tick per_rpc = 0;
    sys.start(client, clientBody(sys, *client, chan, sep, 10,
                                 &completed, &per_rpc));
    sys.start(server, serverBody(sys, *server, chan, &served));
    eq.run();

    EXPECT_EQ(completed, 10);
    EXPECT_EQ(served, 10);
    // Co-located: every message needs the slow path and a remote
    // context switch.
    EXPECT_GE(sys.slowPaths(), 20u);
    EXPECT_EQ(sys.fastPaths(), 0u);
    EXPECT_GE(sys.switches(), 20u);
    // Section 6.2: ~27k cycles (~9us at 3 GHz) per tile-local RPC.
    double cycles = static_cast<double>(per_rpc) / 1000.0 * 3.0;
    EXPECT_GT(cycles, 10'000);
    EXPECT_LT(cycles, 60'000);
}

TEST(M3x, CrossTileRpcUsesFastPath)
{
    sim::EventQueue eq;
    M3xParams params;
    params.userTiles = 2;
    M3xSystem sys(eq, params);

    M3xAct *client = sys.createAct(0, "client");
    M3xAct *server = sys.createAct(1, "server");
    M3xChan chan = sys.makeChannel(server);
    dtu::EpId sep = sys.addSender(chan, client);

    int served = 0, completed = 0;
    sys.start(client, clientBody(sys, *client, chan, sep, 10,
                                 &completed, nullptr));
    sys.start(server, serverBody(sys, *server, chan, &served));
    eq.run();

    EXPECT_EQ(completed, 10);
    // Requests go fast path (server is always current on its tile);
    // replies in this implementation go through the kernel.
    EXPECT_GE(sys.fastPaths(), 10u);
    EXPECT_EQ(sys.switches(), 0u);
}

TEST(M3x, KernelSerializesSwitchesAcrossTiles)
{
    // Two tiles running slow-path RPC pairs: the single kernel limits
    // aggregate throughput; per-tile latency grows vs a single pair.
    auto run_pairs = [](unsigned pairs) {
        sim::EventQueue eq;
        M3xParams params;
        params.userTiles = std::max(2u, pairs);
        M3xSystem sys(eq, params);
        int total = 0;
        std::vector<int> served(pairs, 0);
        for (unsigned i = 0; i < pairs; i++) {
            M3xAct *client =
                sys.createAct(i, "c" + std::to_string(i));
            M3xAct *server =
                sys.createAct(i, "s" + std::to_string(i));
            M3xChan chan = sys.makeChannel(server);
            dtu::EpId sep = sys.addSender(chan, client);
            sys.start(server,
                      serverBody(sys, *server, chan, &served[i]));
            sys.start(client, clientBody(sys, *client, chan, sep, 20,
                                         &total, nullptr));
        }
        eq.run();
        EXPECT_EQ(total, static_cast<int>(pairs) * 20);
        return eq.now();
    };

    sim::Tick one = run_pairs(1);
    sim::Tick four = run_pairs(4);
    // Perfect scaling would keep the runtime equal; the serialized
    // kernel makes four concurrent pairs take markedly longer.
    EXPECT_GT(four, one + one / 2);
}

TEST(M3x, ManyActivitiesPerTileRoundRobinViaMessages)
{
    sim::EventQueue eq;
    M3xParams params;
    params.userTiles = 2;
    M3xSystem sys(eq, params);

    // One server and three clients share tile 0.
    M3xAct *server = sys.createAct(0, "server");
    M3xChan chan = sys.makeChannel(server, 256, 16);
    int served = 0;
    sys.start(server, serverBody(sys, *server, chan, &served));

    int completed = 0;
    for (int c = 0; c < 3; c++) {
        M3xAct *client =
            sys.createAct(0, "client" + std::to_string(c));
        dtu::EpId sep = sys.addSender(chan, client);
        sys.start(client, clientBody(sys, *client, chan, sep, 5,
                                     &completed, nullptr));
    }
    eq.run();
    EXPECT_EQ(completed, 15);
    EXPECT_EQ(served, 15);
}

} // namespace
} // namespace m3v::m3x
