# Golden-trace regression runner (ctest -P script).
#
# Runs a figure binary with --summary-out and compares the produced
# summary JSON byte-for-byte against the committed golden. Inputs:
#   BIN     - figure binary to run
#   OUT     - where to write the fresh summary
#   GOLDEN  - committed reference file
#   EXTRA   - extra arguments for the binary (optional, ;-list)
#   TILES   - value for M3V_FIG09_TILES (optional; CI smoke cap)

if(DEFINED TILES)
    set(ENV{M3V_FIG09_TILES} "${TILES}")
endif()

execute_process(
    COMMAND ${BIN} --summary-out=${OUT} ${EXTRA}
    RESULT_VARIABLE run_rv
    OUTPUT_QUIET)
if(NOT run_rv EQUAL 0)
    message(FATAL_ERROR "golden: ${BIN} exited with ${run_rv}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
    RESULT_VARIABLE cmp_rv)
if(NOT cmp_rv EQUAL 0)
    file(READ ${GOLDEN} golden_text)
    file(READ ${OUT} fresh_text)
    message(FATAL_ERROR
        "golden: summary drifted from ${GOLDEN}\n"
        "--- expected ---\n${golden_text}"
        "--- got (${OUT}) ---\n${fresh_text}"
        "If the change is intentional, refresh the golden:\n"
        "  cp ${OUT} ${GOLDEN}")
endif()
