/**
 * @file
 * Unit tests for the core execution engine: compute timing,
 * preemption with banked cycles, traps, interrupts, timers,
 * external waits and time accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "tile/core.h"

namespace m3v::tile {
namespace {

constexpr std::uint64_t kHundredMhz = 100'000'000;

CoreModel
simpleModel()
{
    CoreModel m;
    m.name = "test";
    m.freqHz = kHundredMhz; // 10 ns per cycle
    m.trapEnterCycles = 10;
    m.trapExitCycles = 10;
    m.irqOverheadCycles = 5;
    m.ipc = 1.0;
    return m;
}

/** Ticks per cycle at 100 MHz (ticks are picoseconds). */
constexpr sim::Tick kCyc = 10'000;

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : core(eq, "core0", simpleModel(), 0) {}

    sim::EventQueue eq;
    Core core;
};

sim::Task
computeBody(Thread &self, std::vector<sim::Tick> &log,
            sim::EventQueue &eq)
{
    co_await self.compute(100);
    log.push_back(eq.now());
    co_await self.compute(50);
    log.push_back(eq.now());
}

TEST_F(CoreTest, ComputeTakesCycleTime)
{
    Thread t(core, "t0", 0);
    std::vector<sim::Tick> log;
    t.start(computeBody(t, log, eq));
    core.dispatch(&t);
    eq.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], 100 * kCyc);
    EXPECT_EQ(log[1], 150 * kCyc);
    EXPECT_TRUE(t.finished());
    EXPECT_EQ(t.userTicks(), 150 * kCyc);
}

sim::Task
longCompute(Thread &self, bool &done, sim::EventQueue &eq,
            sim::Tick &end)
{
    co_await self.compute(1000);
    done = true;
    end = eq.now();
}

TEST_F(CoreTest, PreemptionBanksRemainingCycles)
{
    Thread t(core, "t0", 0);
    bool done = false;
    sim::Tick end = 0;
    t.start(longCompute(t, done, eq, end));
    core.dispatch(&t);

    // Preempt after 400 cycles.
    eq.schedule(400 * kCyc, [&]() {
        Thread *p = core.preemptCurrent();
        EXPECT_EQ(p, &t);
        EXPECT_EQ(t.state(), Thread::State::Ready);
    });
    // Redispatch at cycle 900: remaining 600 cycles run 900..1500.
    eq.schedule(900 * kCyc, [&]() { core.dispatch(&t); });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(end, 1500 * kCyc);
    // User time excludes the descheduled gap.
    EXPECT_EQ(t.userTicks(), 1000 * kCyc);
}

sim::Task
waitBody(Thread &self, bool &woke, sim::EventQueue &eq, sim::Tick &at)
{
    co_await self.compute(10);
    co_await self.externalWait();
    woke = true;
    at = eq.now();
}

TEST_F(CoreTest, ExternalWaitWakes)
{
    Thread t(core, "t0", 0);
    bool woke = false;
    sim::Tick at = 0;
    t.start(waitBody(t, woke, eq, at));
    core.dispatch(&t);
    eq.schedule(500 * kCyc, [&]() { t.wake(); });
    eq.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(at, 500 * kCyc);
}

TEST_F(CoreTest, WakeBeforePreemptedThreadRedispatchIsLatched)
{
    Thread t(core, "t0", 0);
    bool woke = false;
    sim::Tick at = 0;
    t.start(waitBody(t, woke, eq, at));
    core.dispatch(&t);
    // Preempt while waiting, wake while descheduled, redispatch later.
    eq.schedule(100 * kCyc, [&]() { core.preemptCurrent(); });
    eq.schedule(200 * kCyc, [&]() { t.wake(); });
    eq.schedule(800 * kCyc, [&]() { core.dispatch(&t); });
    eq.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(at, 800 * kCyc);
}

TEST_F(CoreTest, TimerIrqPreemptsAndHandlerRuns)
{
    Thread t(core, "t0", 0);
    bool done = false;
    sim::Tick end = 0;
    t.start(longCompute(t, done, eq, end));

    std::vector<IrqKind> irqs;
    core.setIrqHandler([&](IrqKind k) {
        irqs.push_back(k);
        EXPECT_TRUE(core.inKernel());
        EXPECT_EQ(core.current(), nullptr);
        core.kernelExitTo(&t);
    });
    core.dispatch(&t);
    core.setTimer(300 * kCyc);
    eq.run();
    ASSERT_EQ(irqs.size(), 1u);
    EXPECT_EQ(irqs[0], IrqKind::Timer);
    EXPECT_TRUE(done);
    // 1000 cycles of work plus irq+trap overhead (5+10 enter, 10 exit).
    EXPECT_EQ(end, 1025 * kCyc);
}

TEST_F(CoreTest, CancelTimerSuppressesIrq)
{
    Thread t(core, "t0", 0);
    bool done = false;
    sim::Tick end = 0;
    t.start(longCompute(t, done, eq, end));
    bool fired = false;
    core.setIrqHandler([&](IrqKind) { fired = true; });
    core.dispatch(&t);
    core.setTimer(300 * kCyc);
    core.cancelTimer();
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(done);
    EXPECT_EQ(end, 1000 * kCyc);
}

sim::Task
trapBody(Thread &self, Core &core, std::vector<sim::Tick> &log,
         sim::EventQueue &eq)
{
    co_await self.compute(100);
    log.push_back(eq.now());
    // Model an ecall: enter the kernel, do 20 cycles of work there,
    // return to this thread.
    co_await self.trapCall([&core, &self]() {
        core.kernelWork(20, [&core, &self]() {
            core.kernelExitTo(&self);
        });
    });
    log.push_back(eq.now());
}

TEST_F(CoreTest, TrapChargesKernelTimeAndResumes)
{
    Thread t(core, "t0", 0);
    std::vector<sim::Tick> log;
    t.start(trapBody(t, core, log, eq));
    core.dispatch(&t);
    eq.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], 100 * kCyc);
    // + trapEnter(10) + work(20) + trapExit(10) = 40 cycles.
    EXPECT_EQ(log[1], 140 * kCyc);
    EXPECT_EQ(core.kernelTicks(), 40 * kCyc);
}

TEST_F(CoreTest, IrqWhileInKernelIsPended)
{
    Thread t(core, "t0", 0);
    bool done = false;
    sim::Tick end = 0;
    t.start(longCompute(t, done, eq, end));

    int handled = 0;
    core.setIrqHandler([&](IrqKind) {
        handled++;
        if (handled == 1) {
            // Second IRQ arrives while we are still in the kernel.
            core.raiseIrq(IrqKind::CoreRequest);
            EXPECT_EQ(handled, 1);
            core.kernelExitTo(&t);
        } else {
            core.kernelExitTo(&t);
        }
    });
    core.dispatch(&t);
    core.setTimer(200 * kCyc);
    eq.run();
    EXPECT_EQ(handled, 2);
    EXPECT_TRUE(done);
}

TEST_F(CoreTest, AccountingSplitsUserKernelIdle)
{
    Thread t(core, "t0", 0);
    bool done = false;
    sim::Tick end = 0;
    t.start(longCompute(t, done, eq, end));
    core.setIrqHandler([&](IrqKind) {
        core.kernelWork(100, [&]() { core.kernelExitTo(&t); });
    });
    core.dispatch(&t);
    core.setTimer(500 * kCyc);
    eq.run();
    EXPECT_TRUE(done);
    // Kernel time: irq(5) + trapEnter(10) + work(100) + trapExit(10)
    // = 125 cycles.
    EXPECT_EQ(core.kernelTicks(), 125 * kCyc);
    EXPECT_EQ(t.userTicks(), 1000 * kCyc);
}

TEST_F(CoreTest, IdleAccumulatesBetweenThreads)
{
    Thread t(core, "t0", 0);
    bool done = false;
    sim::Tick end = 0;
    t.start(longCompute(t, done, eq, end));
    eq.schedule(500 * kCyc, [&]() { core.dispatch(&t); });
    eq.run();
    EXPECT_EQ(core.idleTicks(), 500 * kCyc);
    EXPECT_TRUE(done);
}

sim::Task
finisher(Thread &self)
{
    co_await self.compute(10);
}

TEST_F(CoreTest, OnFinishedHookFires)
{
    Thread t(core, "t0", 0);
    bool hook = false;
    t.setOnFinished([&](Thread &th) {
        EXPECT_TRUE(th.finished());
        hook = true;
    });
    t.start(finisher(t));
    core.dispatch(&t);
    eq.run();
    EXPECT_TRUE(hook);
    EXPECT_EQ(core.current(), nullptr);
}

TEST(CoreModelTest, FactoryModelsMatchPaperPlatform)
{
    CoreModel r = CoreModel::rocket();
    EXPECT_EQ(r.freqHz, 100'000'000u);
    EXPECT_EQ(r.l1iBytes, 16u * 1024);
    EXPECT_EQ(r.l2Bytes, 512u * 1024);

    CoreModel b = CoreModel::boom();
    EXPECT_EQ(b.freqHz, 80'000'000u);
    EXPECT_GT(b.ipc, r.ipc); // out-of-order is faster per cycle

    CoreModel x = CoreModel::x86Ooo();
    EXPECT_EQ(x.freqHz, 3'000'000'000u);
}

TEST(CoreModelTest, InstsToCyclesUsesIpc)
{
    CoreModel m;
    m.ipc = 2.0;
    EXPECT_EQ(m.instsToCycles(1000), 500u);
    m.ipc = 0.5;
    EXPECT_EQ(m.instsToCycles(1000), 2000u);
}

} // namespace
} // namespace m3v::tile
