/**
 * @file
 * Unit tests for the cache footprint model and the DRAM timing model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "tile/cache_model.h"
#include "tile/dram.h"

namespace m3v::tile {
namespace {

TEST(CacheModel, ColdTouchCostsFullFootprint)
{
    CacheModel c(16 * 1024, 64, 10);
    // 8 KiB footprint = 128 lines -> 1280 cycles.
    EXPECT_EQ(c.touch(1, 8 * 1024), 1280u);
    EXPECT_EQ(c.resident(1), 8u * 1024);
}

TEST(CacheModel, WarmTouchIsFree)
{
    CacheModel c(16 * 1024, 64, 10);
    c.touch(1, 8 * 1024);
    EXPECT_EQ(c.touch(1, 8 * 1024), 0u);
}

TEST(CacheModel, TwoSmallRegionsCoexist)
{
    CacheModel c(16 * 1024, 64, 10);
    c.touch(1, 6 * 1024);
    c.touch(2, 6 * 1024);
    EXPECT_EQ(c.touch(1, 6 * 1024), 0u);
    EXPECT_EQ(c.touch(2, 6 * 1024), 0u);
}

TEST(CacheModel, LargeRegionEvictsLru)
{
    CacheModel c(16 * 1024, 64, 10);
    c.touch(1, 8 * 1024);
    c.touch(2, 12 * 1024); // evicts part of region 1
    EXPECT_LT(c.resident(1), 8u * 1024);
    // Region 1 must now partially refill.
    EXPECT_GT(c.touch(1, 8 * 1024), 0u);
}

TEST(CacheModel, KernelThrashesAppLikeLinuxScan)
{
    // The Figure 10 story: a kernel footprint comparable to L1I wipes
    // the app's working set on every syscall.
    CacheModel l1i(16 * 1024, 64, 10);
    l1i.touch(1, 12 * 1024); // app
    sim::Cycles warm_kernel = 0;
    sim::Cycles app_refill = 0;
    for (int i = 0; i < 10; i++) {
        warm_kernel += l1i.touch(2, 14 * 1024); // syscall path
        app_refill += l1i.touch(1, 12 * 1024);
    }
    // Both thrash each round.
    EXPECT_GT(app_refill, 10u * 100);
    EXPECT_GT(warm_kernel, 10u * 100);

    // Small components (M3v style) do not thrash.
    CacheModel small(16 * 1024, 64, 10);
    small.touch(1, 6 * 1024);
    small.touch(2, 6 * 1024);
    sim::Cycles total = 0;
    for (int i = 0; i < 10; i++) {
        total += small.touch(2, 6 * 1024);
        total += small.touch(1, 6 * 1024);
    }
    EXPECT_EQ(total, 0u);
}

TEST(CacheModel, FootprintLargerThanCacheAlwaysMisses)
{
    CacheModel c(16 * 1024, 64, 10);
    sim::Cycles first = c.touch(1, 32 * 1024);
    sim::Cycles second = c.touch(1, 32 * 1024);
    EXPECT_GT(second, 0u);
    EXPECT_LT(second, first);
    EXPECT_EQ(c.resident(1), 16u * 1024);
}

TEST(CacheModel, FlushDropsEverything)
{
    CacheModel c(16 * 1024, 64, 10);
    c.touch(1, 8 * 1024);
    c.flush();
    EXPECT_EQ(c.resident(1), 0u);
    EXPECT_EQ(c.touch(1, 8 * 1024), 1280u);
}

class DramTest : public ::testing::Test
{
  protected:
    DramTest() : dram(eq, "mem0", DramParams{}) {}

    sim::EventQueue eq;
    Dram dram;
};

TEST_F(DramTest, AccessLatencyAndBandwidth)
{
    sim::Tick done_at = 0;
    dram.access(0, 4096, [&]() { done_at = eq.now(); });
    eq.run();
    // 30 cycles + 4096/16 = 256 cycles = 286 cycles @ 200 MHz (5ns).
    EXPECT_EQ(done_at, 286u * 5000u);
}

TEST_F(DramTest, RequestsAreServedInOrder)
{
    std::vector<int> order;
    dram.access(0, 64, [&]() { order.push_back(1); });
    dram.access(0, 64, [&]() { order.push_back(2); });
    dram.access(0, 64, [&]() { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(dram.requests(), 3u);
    EXPECT_EQ(dram.bytesTransferred(), 192u);
}

TEST_F(DramTest, QueueingDelaysLaterRequests)
{
    sim::Tick t1 = 0, t2 = 0;
    dram.access(0, 4096, [&]() { t1 = eq.now(); });
    dram.access(0, 4096, [&]() { t2 = eq.now(); });
    eq.run();
    EXPECT_EQ(t2 - t1, t1); // second takes as long again
}

TEST_F(DramTest, DataRoundTrips)
{
    const char msg[] = "m3v memory tile";
    dram.write(1000, msg, sizeof(msg));
    char buf[sizeof(msg)] = {};
    dram.read(1000, buf, sizeof(msg));
    EXPECT_STREQ(buf, msg);
    dram.fill(1000, 0, sizeof(msg));
    dram.read(1000, buf, sizeof(msg));
    EXPECT_EQ(buf[0], 0);
}

} // namespace
} // namespace m3v::tile
