/**
 * @file
 * Tests for the parallel event core: the SPSC mailbox ring, the
 * LaneScheduler's conservative windows and canonical merge, shard
 * merging of metrics/traces, and the runCells sweep helper.
 *
 * The determinism tests run the same model at several worker counts
 * and require bit-identical results — the core guarantee of the
 * sharded execution mode.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.h"
#include "sim/lane.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/spsc.h"
#include "sim/trace.h"

namespace m3v::sim {
namespace {

TEST(SpscRingTest, PushPopOrder)
{
    SpscRing<int> ring(4);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 4; i++)
        EXPECT_TRUE(ring.tryPush(std::move(i)));
    int v;
    for (int i = 0; i < 4; i++) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
}

TEST(SpscRingTest, FullRejectsPush)
{
    SpscRing<int> ring(2);
    std::size_t pushed = 0;
    for (int i = 0; i < 100; i++) {
        int v = i;
        if (!ring.tryPush(std::move(v)))
            break;
        pushed++;
    }
    EXPECT_EQ(pushed, ring.capacity());
    int v;
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    int w = 777;
    EXPECT_TRUE(ring.tryPush(std::move(w)));
}

TEST(SpscRingTest, ConcurrentProducerConsumer)
{
    SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t kN = 100000;
    std::thread producer([&]() {
        for (std::uint64_t i = 0; i < kN;) {
            std::uint64_t v = i;
            if (ring.tryPush(std::move(v)))
                i++;
        }
    });
    std::uint64_t expect = 0;
    while (expect < kN) {
        std::uint64_t v;
        if (ring.tryPop(v)) {
            ASSERT_EQ(v, expect);
            expect++;
        }
    }
    producer.join();
}

/**
 * A deterministic multi-lane ping-pong model: each lane runs a local
 * event chain and fires messages at other lanes; every lane records a
 * signature of (tick, value) pairs. The signature must not depend on
 * the worker count.
 */
struct PingPong
{
    static constexpr Tick kLookahead = 100;

    explicit PingPong(unsigned lanes, unsigned jobs)
        : sched(lanes, jobs, kLookahead), log(lanes)
    {
    }

    void
    bounce(unsigned lane, unsigned hops, std::uint64_t value)
    {
        log[lane].push_back({sched.lane(lane).now(), value});
        if (hops == 0)
            return;
        unsigned next =
            (lane + 1 + static_cast<unsigned>(value % 3)) %
            sched.lanes();
        if (next == lane)
            next = (lane + 1) % sched.lanes();
        Tick due = sched.lane(lane).now() + kLookahead +
                   (value % 7) * 13;
        sched.post(lane, next, due, [this, next, hops, value]() {
            bounce(next, hops - 1, value * 6364136223846793005ull + 1);
        });
        // Also some lane-local churn between the cross-lane hops.
        sched.lane(lane).schedule(value % 50, [this, lane]() {
            log[lane].push_back({sched.lane(lane).now(), 0});
        });
    }

    LaneScheduler sched;
    std::vector<std::vector<std::pair<Tick, std::uint64_t>>> log;
};

std::vector<std::vector<std::pair<Tick, std::uint64_t>>>
runPingPong(unsigned lanes, unsigned jobs)
{
    PingPong pp(lanes, jobs);
    for (unsigned l = 0; l < lanes; l++) {
        pp.sched.lane(l).schedule(l * 17, [&pp, l]() {
            pp.bounce(l, 40, l + 1);
        });
    }
    pp.sched.run();
    return pp.log;
}

TEST(LaneSchedulerTest, DeterministicAcrossJobCounts)
{
    auto ref = runPingPong(4, 1);
    for (unsigned jobs : {2u, 4u, 8u}) {
        auto got = runPingPong(4, jobs);
        EXPECT_EQ(got, ref) << "jobs=" << jobs;
    }
}

TEST(LaneSchedulerTest, SingleLaneMatchesPlainQueue)
{
    // A single-lane model is the degenerate case: the scheduler must
    // execute exactly the same event sequence as a bare EventQueue.
    std::vector<std::pair<Tick, int>> plain;
    {
        EventQueue eq;
        for (int i = 0; i < 20; i++) {
            eq.schedule(static_cast<Tick>(i * 7 % 13), [&plain, &eq,
                                                        i]() {
                plain.push_back({eq.now(), i});
            });
        }
        eq.run();
    }
    std::vector<std::pair<Tick, int>> laned;
    {
        LaneScheduler sched(1, 1, 100);
        EventQueue &eq = sched.lane(0);
        for (int i = 0; i < 20; i++) {
            eq.schedule(static_cast<Tick>(i * 7 % 13), [&laned, &eq,
                                                        i]() {
                laned.push_back({eq.now(), i});
            });
        }
        sched.run();
    }
    EXPECT_EQ(laned, plain);
}

TEST(LaneSchedulerTest, CrossLaneArrivalTickIsExact)
{
    LaneScheduler sched(2, 2, 50);
    Tick arrived = 0;
    sched.lane(0).schedule(123, [&]() {
        sched.post(0, 1, 123 + 50, [&]() {
            arrived = sched.lane(1).now();
        });
    });
    sched.run();
    EXPECT_EQ(arrived, 173u);
}

TEST(LaneSchedulerTest, LookaheadViolationPanics)
{
    LaneScheduler sched(2, 1, 100);
    sched.lane(0).schedule(10, [&]() {
        // Due 10 + 99 < now + lookahead: a model bug.
        sched.post(0, 1, 109, []() {});
    });
    EXPECT_DEATH(sched.run(), "lookahead");
}

TEST(LaneSchedulerTest, PostExactlyAtLookaheadBoundary)
{
    // Regression: posting at precisely now() + pairLookahead(src,
    // dst) is legal — the boundary is inclusive — including when the
    // due tick lands exactly on a calendar-wheel horizon multiple
    // (2^20 ticks) and the per-pair lookaheads are asymmetric.
    static constexpr Tick kHorizon = Tick{1} << 20;
    for (unsigned jobs : {1u, 2u}) {
        LaneScheduler sched(2, jobs, 10);
        sched.setPairLookahead(0, 1, 64);
        sched.setPairLookahead(1, 0, kHorizon + 3);
        std::vector<Tick> hits;
        // Park lane 0 just short of the horizon so the boundary
        // post lands exactly on the rollover edge...
        sched.lane(0).schedule(kHorizon - 64, [&]() {
            sched.post(0, 1,
                       sched.lane(0).now() +
                           sched.pairLookahead(0, 1),
                       [&]() {
                           hits.push_back(sched.lane(1).now());
                           // ...and the reply sits exactly on the
                           // (larger, asymmetric) reverse-pair
                           // boundary, crossing a second horizon
                           // multiple.
                           sched.post(
                               1, 0,
                               sched.lane(1).now() +
                                   sched.pairLookahead(1, 0),
                               [&]() {
                                   hits.push_back(
                                       sched.lane(0).now());
                               });
                       });
        });
        sched.run();
        ASSERT_EQ(hits.size(), 2u) << "jobs=" << jobs;
        EXPECT_EQ(hits[0], kHorizon);
        EXPECT_EQ(hits[1], 2 * kHorizon + 3);
    }
}

TEST(LaneSchedulerTest, PerPairLookaheadIsDirectional)
{
    // A post that clears the scheduler's smallest lookahead but
    // violates its own (larger) directional pair value must panic —
    // the check is per ordered pair, not global.
    LaneScheduler sched(2, 1, 10);
    sched.setPairLookahead(0, 1, 500);
    sched.lane(0).schedule(50, [&]() {
        sched.post(0, 1, 50 + 499, []() {});
    });
    EXPECT_DEATH(sched.run(), "lookahead");
}

TEST(LaneSchedulerTest, NoCrossingPairPanicsOnPost)
{
    // Pairs declared kNoCrossing carry no messages at any distance.
    LaneScheduler sched(2, 1, 10);
    sched.setPairLookahead(0, 1, LaneScheduler::kNoCrossing);
    sched.lane(0).schedule(0, [&]() {
        sched.post(0, 1, 1000000, []() {});
    });
    EXPECT_DEATH(sched.run(), "lookahead");
}

TEST(LaneSchedulerTest, MailboxOverflowBackpressure)
{
    // Tiny mailbox: tryPost must refuse once full, and succeed again
    // after the barrier drains it.
    LaneScheduler sched(2, 1, 10, /*mailbox_capacity=*/4);
    std::size_t accepted = 0, refused = 0;
    int delivered = 0;
    sched.lane(0).schedule(0, [&]() {
        for (int i = 0; i < 20; i++) {
            if (sched.tryPost(0, 1, sched.lane(0).now() + 10,
                              [&delivered]() { delivered++; }))
                accepted++;
            else
                refused++;
        }
    });
    sched.run();
    EXPECT_GT(refused, 0u);
    EXPECT_EQ(delivered, static_cast<int>(accepted));
    EXPECT_GE(accepted, 4u);
}

TEST(LaneSchedulerTest, OverflowPanicsOnPost)
{
    LaneScheduler sched(2, 1, 10, /*mailbox_capacity=*/2);
    sched.lane(0).schedule(0, [&]() {
        for (int i = 0; i < 20; i++)
            sched.post(0, 1, sched.lane(0).now() + 10, []() {});
    });
    EXPECT_DEATH(sched.run(), "overflow");
}

TEST(LaneSchedulerTest, WheelHorizonRollover)
{
    // Cross-lane messages far beyond the calendar wheel horizon
    // (~1 us = 2^11 * 512 ticks) must still merge and execute at the
    // exact due tick, across many barrier rounds.
    constexpr Tick kFar = Tick{1} << 24; // 16 M ticks >> horizon
    for (unsigned jobs : {1u, 4u}) {
        LaneScheduler sched(3, jobs, 1000);
        std::vector<Tick> hits;
        sched.lane(0).schedule(0, [&]() {
            sched.post(0, 1, kFar, [&]() {
                hits.push_back(sched.lane(1).now());
                sched.post(1, 2, kFar + 2 * kFar, [&]() {
                    hits.push_back(sched.lane(2).now());
                });
            });
        });
        sched.run();
        ASSERT_EQ(hits.size(), 2u) << "jobs=" << jobs;
        EXPECT_EQ(hits[0], kFar);
        EXPECT_EQ(hits[1], 3 * kFar);
    }
}

TEST(LaneSchedulerTest, HorizonRolloverAcrossWindowBarriers)
{
    // Interaction of the two-level calendar queue with the lane
    // scheduler: the wheel horizon (2^20 ticks) rolls over several
    // times while conservative windows repeatedly drain and refill
    // the wheel. Dense local chains straddle every horizon multiple
    // mid-stride, and cross-lane messages land exactly on and next to
    // the boundaries. The merged execution must be bit-identical for
    // any worker count, with exact due ticks.
    static constexpr Tick kHorizon = Tick{1} << 20;
    static constexpr Tick kLookahead = 1000;
    static constexpr unsigned kLanes = 3;
    static constexpr int kChainSteps = 36;
    static constexpr Tick kStride = 174763; // prime, ~kHorizon / 6

    auto run = [&](unsigned jobs) {
        LaneScheduler sched(kLanes, jobs, kLookahead);
        std::vector<std::vector<std::pair<Tick, std::uint64_t>>> log(
            kLanes);

        // Self-rescheduling dense chains, one per lane.
        auto step = std::make_shared<
            std::function<void(unsigned, int, std::uint64_t)>>();
        *step = [&sched, &log, step](unsigned l, int remaining,
                                     std::uint64_t value) {
            log[l].push_back({sched.lane(l).now(), value});
            if (remaining == 0)
                return;
            sched.lane(l).schedule(
                kStride + value % 97, [step, l, remaining, value]() {
                    (*step)(l, remaining - 1,
                            value * 6364136223846793005ull + 1);
                });
            // Cross-lane hop from some steps, due just past the
            // window edge so it rides the next barrier merge.
            if (remaining % 5 == 0) {
                unsigned next = (l + 1) % kLanes;
                sched.post(l, next,
                           sched.lane(l).now() + kLookahead +
                               value % 7,
                           [&log, &sched, next, value]() {
                               log[next].push_back(
                                   {sched.lane(next).now(),
                                    ~value});
                           });
            }
        };
        for (unsigned l = 0; l < kLanes; l++)
            sched.lane(l).schedule(l * 13, [step, l]() {
                (*step)(l, kChainSteps, l + 1);
            });

        // Events pinned to the horizon boundaries themselves, plus
        // cross-lane posts due *exactly* on a boundary.
        for (Tick k = 1; k <= 6; k++) {
            Tick edge = k * kHorizon;
            for (unsigned l = 0; l < kLanes; l++) {
                for (Tick off : {edge - 1, edge, edge + 1})
                    sched.lane(l).schedule(off, [&log, &sched, l]() {
                        log[l].push_back(
                            {sched.lane(l).now(), 0xb0b0});
                    });
                unsigned next = (l + 1) % kLanes;
                sched.lane(l).schedule(
                    edge - kLookahead,
                    [&sched, &log, l, next, edge]() {
                        sched.post(l, next, edge,
                                   [&log, &sched, next]() {
                                       log[next].push_back(
                                           {sched.lane(next).now(),
                                            0xc405});
                                   });
                    });
            }
        }
        sched.run();
        EXPECT_GT(sched.rounds(), 10u);
        // *step captures the shared_ptr that owns it; break the
        // cycle so the chain closures are released.
        *step = nullptr;
        return log;
    };

    auto ref = run(1);
    // Sanity on the reference: every boundary-pinned event ran at its
    // exact tick, on every lane, for every horizon multiple.
    for (unsigned l = 0; l < kLanes; l++) {
        for (Tick k = 1; k <= 6; k++) {
            Tick edge = k * kHorizon;
            for (Tick off : {edge - 1, edge, edge + 1}) {
                bool found = false;
                for (const auto &[t, v] : ref[l])
                    found |= t == off && v == 0xb0b0;
                EXPECT_TRUE(found)
                    << "lane " << l << " tick " << off;
            }
            bool cross = false;
            for (const auto &[t, v] : ref[(l + 1) % kLanes])
                cross |= t == edge && v == 0xc405;
            EXPECT_TRUE(cross) << "cross-lane at " << edge;
        }
        // The dense chain really straddled the horizon multiples.
        EXPECT_GE(ref[l].back().first, 6 * kHorizon);
    }
    for (unsigned jobs : {2u, 4u}) {
        auto got = run(jobs);
        EXPECT_EQ(got, ref) << "jobs=" << jobs;
    }
}

TEST(LaneSchedulerTest, PerLaneRngStreamsAreStable)
{
    // Fault-injection style use: each lane draws from its own Rng
    // stream; the sequence seen on each lane must not depend on the
    // worker count or on what other lanes do.
    auto run = [](unsigned jobs) {
        LaneScheduler sched(4, jobs, 100);
        std::vector<Rng> rng;
        Rng root(42);
        for (unsigned l = 0; l < 4; l++)
            rng.push_back(root.split());
        std::vector<std::vector<std::uint64_t>> draws(4);
        for (unsigned l = 0; l < 4; l++) {
            for (int i = 0; i < 50; i++) {
                sched.lane(l).schedule(
                    static_cast<Tick>(i * 31 + l),
                    [&draws, &rng, l]() {
                        draws[l].push_back(rng[l].next());
                    });
            }
        }
        sched.run();
        return draws;
    };
    auto ref = run(1);
    EXPECT_EQ(run(4), ref);
}

TEST(LaneSchedulerTest, MergeMetricsMatchesUnsharded)
{
    // Shard a counting workload over 4 lanes, merge the shards, and
    // compare against the same instruments bumped on one lane.
    auto populate = [](MetricsRegistry &m, int base) {
        m.counter("a.count")->inc(static_cast<std::uint64_t>(base));
        for (int i = 0; i < 10; i++) {
            m.sampler("a.lat")->add(base * 100.0 + i);
            m.histogram("a.h", 0.0, 1000.0, 10)
                ->add(base * 100.0 + i);
        }
    };
    LaneScheduler sched(4, 2, 10);
    for (unsigned l = 0; l < 4; l++) {
        sched.lane(l).schedule(0, [&sched, populate, l]() {
            populate(sched.lane(l).metrics(),
                     static_cast<int>(l) + 1);
        });
    }
    sched.run();
    MetricsRegistry merged;
    sched.mergeMetrics(merged);

    MetricsRegistry flat;
    for (int base = 1; base <= 4; base++)
        populate(flat, base);
    EXPECT_EQ(merged.toJson(), flat.toJson());
}

TEST(LaneSchedulerTest, MergeTraceConcatenatesLaneTracks)
{
    LaneScheduler sched(2, 1, 10);
    sched.enableAllTracing();
    sched.lane(0).schedule(5, [&]() {
        sched.lane(0).tracer().begin(TraceCat::Sched, 0, 0, "w0");
        sched.lane(0).tracer().end(TraceCat::Sched, 0, 0);
    });
    sched.lane(1).schedule(7, [&]() {
        sched.lane(1).tracer().instant(TraceCat::Noc, 1, 0, "hop");
    });
    sched.run();
    EventQueue host;
    Tracer merged(host);
    sched.mergeTrace(merged);
    EXPECT_EQ(merged.events(), 3u);
    std::string json = merged.toJson();
    EXPECT_NE(json.find("\"w0\""), std::string::npos);
    EXPECT_NE(json.find("\"hop\""), std::string::npos);
}

TEST(RunCellsTest, AllCellsRunOnceAnyJobs)
{
    for (unsigned jobs : {1u, 3u, 8u}) {
        std::vector<int> results(20, 0);
        std::vector<UniqueFunction<void()>> cells;
        for (int i = 0; i < 20; i++) {
            cells.push_back([&results, i]() {
                // Each cell runs its own tiny simulation.
                EventQueue eq;
                int acc = 0;
                for (int k = 0; k <= i; k++)
                    eq.schedule(static_cast<Tick>(k),
                                [&acc]() { acc++; });
                eq.run();
                results[static_cast<std::size_t>(i)] = acc;
            });
        }
        runCells(jobs, std::move(cells));
        for (int i = 0; i < 20; i++)
            EXPECT_EQ(results[static_cast<std::size_t>(i)], i + 1)
                << "jobs=" << jobs;
    }
}

} // namespace
} // namespace m3v::sim
