/**
 * @file
 * Unit tests for counters, samplers, histograms and table printing.
 */

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace m3v::sim {
namespace {

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Sampler, EmptyIsZero)
{
    Sampler s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Sampler, KnownMoments)
{
    Sampler s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Sampler, SingleSample)
{
    Sampler s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Sampler, ResetClears)
{
    Sampler s;
    s.add(1);
    s.add(2);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(42.0);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, PercentileMedian)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; i++)
        h.add(static_cast<double>(i) + 0.5);
    double p50 = h.percentile(0.5);
    EXPECT_GE(p50, 49.0);
    EXPECT_LE(p50, 52.0);
    double p99 = h.percentile(0.99);
    EXPECT_GE(p99, 98.0);
}

TEST(Histogram, PercentileEmptyReturnsLowerBound)
{
    Histogram h(2.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 2.0);
}

TEST(Histogram, PercentileAllUnderflow)
{
    Histogram h(10.0, 20.0, 5);
    h.add(1.0);
    h.add(2.0);
    h.add(3.0);
    // Every sample sits below the range; any percentile clamps to
    // the lower bound rather than walking past the buckets.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
}

TEST(Histogram, PercentileFullFractionReturnsUpperBound)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(2.5);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileSingleBucket)
{
    Histogram h(0.0, 10.0, 1);
    h.add(5.0);
    // One bucket spans the whole range; its upper edge is the only
    // answer the histogram can give.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, InvalidConstructionPanics)
{
    EXPECT_DEATH(Histogram(0.0, 10.0, 0), "Histogram");
    EXPECT_DEATH(Histogram(10.0, 10.0, 4), "Histogram");
    EXPECT_DEATH(Histogram(10.0, 5.0, 4), "Histogram");
}

TEST(Sampler, ResetMidStreamClearsMoments)
{
    Sampler s;
    s.add(100.0);
    s.add(200.0);
    s.reset();
    // The second stream must see none of the first stream's
    // min/max/mean/m2 state.
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(TablePrinter, RendersAlignedRows)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(FmtDouble, Decimals)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

} // namespace
} // namespace m3v::sim
