/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.h"

namespace m3v::sim {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(r.nextBounded(13), 13u);
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        auto v = r.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= (v == 5);
        saw_hi |= (v == 8);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; i++) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng r(1234);
    constexpr int kBuckets = 10;
    constexpr int kSamples = 100000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kSamples; i++)
        counts[r.nextBounded(kBuckets)]++;
    // Each bucket within 5% of expectation.
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets * 95 / 100);
        EXPECT_LT(c, kSamples / kBuckets * 105 / 100);
    }
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng root(99);
    Rng a = root.split();
    Rng b = root.split();
    int same = 0;
    for (int i = 0; i < 1000; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(55);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; i++)
        if (r.nextBool(0.3))
            hits++;
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

} // namespace
} // namespace m3v::sim
