/**
 * @file
 * Unit tests for the discrete-event queue: ordering, cancellation,
 * time advancement, and capped execution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace m3v::sim {
namespace {

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; i++)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(123, [&]() { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, NestedSchedulingFromHandler)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(10, [&]() {
        fired.push_back(eq.now());
        eq.schedule(5, [&]() { fired.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], 10u);
    EXPECT_EQ(fired[1], 15u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    EventHandle h = eq.schedule(10, [&]() { ran = true; });
    EXPECT_TRUE(h.pending());
    EXPECT_TRUE(h.cancel());
    EXPECT_FALSE(h.pending());
    eq.run();
    EXPECT_FALSE(ran);
    // Second cancel is a no-op.
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue eq;
    EventHandle h = eq.schedule(1, []() {});
    eq.run();
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle h;
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.schedule(21, [&]() { order.push_back(3); });
    eq.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), 20u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, RunCappedLimitsExecution)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; i++)
        eq.schedule(static_cast<Tick>(i), [&]() { count++; });
    EXPECT_FALSE(eq.runCapped(4));
    EXPECT_EQ(count, 4);
    EXPECT_TRUE(eq.runCapped(100));
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunCappedDrainedWhenOnlyCancelledRemain)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&]() { count++; });
    EventHandle h = eq.schedule(2, [&]() { count++; });
    h.cancel();
    // One live event left; the budget covers it, so the queue is
    // drained — the cancelled event must not make runCapped report
    // leftover work.
    EXPECT_TRUE(eq.runCapped(1));
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunUntilIgnoresCancelledFrontEvents)
{
    EventQueue eq;
    bool ran = false;
    for (Tick t = 1; t <= 5; t++)
        eq.schedule(t, []() {}).cancel();
    eq.schedule(50, [&]() { ran = true; });
    // The cancelled events before the boundary are dead; the live one
    // is beyond it. Nothing runs, and time still advances to the
    // boundary.
    eq.runUntil(20);
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.executed(), 0u);
    eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; i++)
        eq.schedule(1, []() {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, ScheduleAtAbsoluteTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&]() {
        eq.scheduleAt(50, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 50u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 2000; i++) {
        Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.scheduleAt(when, [&, when]() {
            if (when < last)
                monotone = false;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}

} // namespace
} // namespace m3v::sim
