/**
 * @file
 * Tests for the allocation-free event core: slab/generation handle
 * reuse, inline vs heap-allocated closures, calendar-queue behavior
 * across bucket and horizon boundaries, determinism against a
 * reference (tick, seq) model, and steady-state allocation freedom.
 *
 * This binary overrides global operator new/delete to count heap
 * allocations; the override is a pure pass-through to malloc/free, so
 * it is safe under ASan as well.
 */

#include <gtest/gtest.h>

// The replacement operator new below forwards to malloc, so pairing
// its result with free is intentional; GCC cannot see through the
// global replacement and misdiagnoses the pair.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}

void *
operator new(std::size_t size)
{
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace m3v::sim {
namespace {

constexpr Tick kHorizon = static_cast<Tick>(EventQueue::kNumBuckets)
                          << EventQueue::kBucketTickShift;

//
// Closure storage: inline small-buffer vs heap fallback.
//

TEST(UniqueFunctionSbo, SmallClosuresAreInline)
{
    int x = 0;
    auto small = [&x]() { x++; };
    static_assert(
        UniqueFunction<void()>::storedInline<decltype(small)>);

    // Three pointers worth of captures still fits.
    int *a = &x, *b = &x, *c = &x;
    auto three = [a, b, c]() { (*a)++, (*b)++, (*c)++; };
    static_assert(
        UniqueFunction<void()>::storedInline<decltype(three)>);

    // More than kInlineSize bytes of captures does not.
    std::array<char, 64> big{};
    auto fat = [big]() { (void)big; };
    static_assert(
        !UniqueFunction<void()>::storedInline<decltype(fat)>);
}

TEST(UniqueFunctionSbo, HeapFallbackClosureExecutes)
{
    EventQueue eq;
    std::array<char, 64> big{};
    big[0] = 7;
    int seen = 0;
    eq.schedule(5, [big, &seen]() { seen = big[0]; });
    eq.run();
    EXPECT_EQ(seen, 7);
}

TEST(UniqueFunctionSbo, MoveOnlyCaptureExecutesAndFrees)
{
    EventQueue eq;
    auto payload = std::make_unique<int>(42);
    int seen = 0;
    eq.schedule(5, [p = std::move(payload), &seen]() { seen = *p; });
    eq.run();
    EXPECT_EQ(seen, 42);
}

TEST(UniqueFunctionSbo, CancelDestroysCapturesPromptly)
{
    EventQueue eq;
    auto tracked = std::make_shared<int>(1);
    std::weak_ptr<int> watch = tracked;
    EventHandle h =
        eq.schedule(10, [p = std::move(tracked)]() { (void)*p; });
    ASSERT_FALSE(watch.expired());
    EXPECT_TRUE(h.cancel());
    // The closure (and its capture) dies at cancel() time, not when
    // the tombstone is eventually swept.
    EXPECT_TRUE(watch.expired());
    eq.run();
}

//
// Slab pool and generation handles.
//

TEST(EventCore, StaleHandleAfterCancelAndSlotReuse)
{
    EventQueue eq;
    bool a_ran = false, b_ran = false;
    EventHandle a = eq.schedule(10, [&]() { a_ran = true; });
    EXPECT_TRUE(a.cancel());
    // The freed slot is recycled for the next event; the stale handle
    // must see the generation bump and stay inert.
    EventHandle b = eq.schedule(10, [&]() { b_ran = true; });
    EXPECT_FALSE(a.pending());
    EXPECT_FALSE(a.cancel());
    EXPECT_TRUE(b.pending());
    eq.run();
    EXPECT_FALSE(a_ran);
    EXPECT_TRUE(b_ran);
}

TEST(EventCore, StaleHandleAfterFireAndSlotReuse)
{
    EventQueue eq;
    EventHandle a = eq.schedule(1, []() {});
    eq.run();
    bool b_ran = false;
    EventHandle b = eq.schedule(1, [&]() { b_ran = true; });
    // a's record was recycled into b; a must not be able to cancel b.
    EXPECT_FALSE(a.pending());
    EXPECT_FALSE(a.cancel());
    EXPECT_TRUE(b.pending());
    eq.run();
    EXPECT_TRUE(b_ran);
}

TEST(EventCore, CancelReflectsInPendingCountImmediately)
{
    EventQueue eq;
    EventHandle h = eq.schedule(10, []() {});
    eq.schedule(20, []() {});
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_FALSE(eq.empty());
    h.cancel();
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 1u);
}

TEST(EventCore, ManyHandlesSurviveSlabGrowth)
{
    EventQueue eq;
    int ran = 0;
    std::vector<EventHandle> handles;
    // Far more events than one slab holds, all pending at once.
    for (int i = 0; i < 3000; i++)
        handles.push_back(
            eq.schedule(static_cast<Tick>(1 + i), [&]() { ran++; }));
    for (std::size_t i = 0; i < handles.size(); i += 2)
        EXPECT_TRUE(handles[i].cancel());
    eq.run();
    EXPECT_EQ(ran, 1500);
    for (auto &h : handles)
        EXPECT_FALSE(h.pending());
}

//
// Calendar queue: bucket and horizon behavior.
//

TEST(EventCore, OrderAcrossHorizonBoundaries)
{
    EventQueue eq;
    std::vector<Tick> fired;
    // Straddle several wheel horizons, scheduled out of order, plus
    // two events whose bucket indexes collide (exactly one horizon
    // apart).
    std::vector<Tick> whens = {
        10 * kHorizon, 5,          3 * kHorizon + 1, kHorizon + 5,
        kHorizon - 1,  2 * kHorizon + 5, 5 + kHorizon, 17,
    };
    for (Tick w : whens)
        eq.scheduleAt(w, [&fired, &eq]() { fired.push_back(eq.now()); });
    eq.run();
    std::vector<Tick> sorted = whens;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fired, sorted);
    EXPECT_EQ(eq.now(), 10 * kHorizon);
}

TEST(EventCore, SameTickFifoAcrossLargeGap)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; i++)
        eq.scheduleAt(7 * kHorizon + 3, [&order, i]() {
            order.push_back(i);
        });
    eq.run();
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventCore, ScheduleShortDelaysAfterRunUntilFastForward)
{
    EventQueue eq;
    std::vector<Tick> fired;
    // A lone far-future event, then a fast-forward to the middle of
    // nowhere, then short-delay events: the wheel must accept the
    // short delays even though it previously looked far ahead.
    eq.scheduleAt(10 * kHorizon,
                  [&]() { fired.push_back(eq.now()); });
    eq.runUntil(4 * kHorizon + 17);
    EXPECT_EQ(eq.now(), 4 * kHorizon + 17);
    EXPECT_TRUE(fired.empty());
    eq.schedule(5, [&]() { fired.push_back(eq.now()); });
    eq.schedule(0, [&]() { fired.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 4 * kHorizon + 17);
    EXPECT_EQ(fired[1], 4 * kHorizon + 17 + 5);
    EXPECT_EQ(fired[2], 10 * kHorizon);
}

TEST(EventCore, NestedSchedulingAcrossBuckets)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.schedule(1, [&]() {
        fired.push_back(eq.now());
        // Same tick (goes to the now-FIFO), next bucket, and beyond
        // the horizon, scheduled from inside a handler.
        eq.schedule(0, [&]() { fired.push_back(eq.now()); });
        eq.schedule(2 * kHorizon, [&]() { fired.push_back(eq.now()); });
        eq.schedule(3, [&]() { fired.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(fired.size(), 4u);
    EXPECT_EQ(fired[0], 1u);
    EXPECT_EQ(fired[1], 1u);
    EXPECT_EQ(fired[2], 4u);
    EXPECT_EQ(fired[3], 1u + 2 * kHorizon);
}

//
// Determinism: the queue must execute exactly in (tick, seq) order,
// matching a naive reference model, independent of wheel/overflow
// placement and of cancellations.
//

struct RefEvent
{
    Tick when;
    std::uint64_t seq;
    int id;
    bool cancelled = false;
};

TEST(EventCore, MatchesReferenceModelOnRandomWorkload)
{
    EventQueue eq;
    Rng rng(987654321);
    std::vector<int> got;
    std::vector<RefEvent> ref;
    std::vector<EventHandle> handles;
    std::uint64_t seq = 0;
    int next_id = 0;

    auto random_delay = [&rng]() -> Tick {
        switch (rng.next() % 5) {
        case 0: return 0;
        case 1: return rng.next() % 64;                // same bucket
        case 2: return rng.next() % (kHorizon / 4);    // in-wheel
        case 3: return rng.next() % (2 * kHorizon);    // straddling
        default: return rng.next() % (20 * kHorizon);  // overflow
        }
    };

    for (int i = 0; i < 2000; i++) {
        Tick d = random_delay();
        int id = next_id++;
        handles.push_back(
            eq.schedule(d, [&got, id]() { got.push_back(id); }));
        ref.push_back(RefEvent{eq.now() + d, seq++, id});
        if (rng.nextBool(0.2)) {
            std::size_t victim = rng.next() % handles.size();
            if (handles[victim].cancel())
                ref[victim].cancelled = true;
        }
        // Interleave execution so schedules happen at many different
        // current ticks (and from many wheel positions).
        if (rng.nextBool(0.3))
            eq.runOne();
    }
    eq.run();

    // Reference order: stable (when, seq), skipping cancelled. Events
    // executed early (interleaved runOne) come out in the same global
    // order because execution never runs ahead of schedules here:
    // every runOne() pops the globally-earliest live event.
    std::vector<RefEvent> expect = ref;
    std::sort(expect.begin(), expect.end(),
              [](const RefEvent &a, const RefEvent &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.seq < b.seq;
              });
    std::vector<int> want;
    for (const auto &e : expect)
        if (!e.cancelled)
            want.push_back(e.id);
    EXPECT_EQ(got, want);
}

TEST(EventCore, SameSeedSameExecutionSequence)
{
    auto run = [](std::uint64_t seed) {
        EventQueue eq;
        Rng rng(seed);
        std::vector<std::pair<Tick, int>> fired;
        for (int i = 0; i < 500; i++) {
            Tick d = rng.next() % (3 * kHorizon);
            eq.schedule(d, [&fired, &eq, i]() {
                fired.emplace_back(eq.now(), i);
            });
            if (rng.nextBool(0.5))
                eq.runOne();
        }
        eq.run();
        return fired;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_EQ(run(42).size(), 500u);
}

//
// Allocation freedom: a steady-state schedule/fire cycle with inline
// closures performs zero heap allocations once pools and buckets are
// warm.
//

TEST(EventCore, SteadyStateScheduleFireIsAllocationFree)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    auto cycle = [&eq, &sink](int rounds) {
        for (int i = 0; i < rounds; i++) {
            // Delays spread across many buckets plus a same-tick
            // event every fifth round to exercise the now-FIFO.
            Tick d = (i % 5 == 0)
                         ? 0
                         : static_cast<Tick>((i * 37) % 40000);
            eq.schedule(d, [&sink]() { sink++; });
            EventHandle extra =
                eq.schedule(static_cast<Tick>(50 + (i * 13) % 20000),
                            [&sink]() { sink++; });
            if (i % 3 == 0)
                extra.cancel();
            eq.runOne();
            if (i % 2 == 0)
                eq.runOne();
        }
        eq.run();
    };
    // Align now() to a wheel-period boundary so both cycles map the
    // same delay pattern onto the same buckets — warmup then grows
    // exactly the bucket vectors the measured cycle reuses.
    auto align = [&eq]() {
        eq.runUntil((eq.now() / kHorizon + 1) * kHorizon);
    };
    // Warm up pools, bucket vectors, and the now-FIFO.
    align();
    cycle(10000);
    align();
    std::uint64_t before = gAllocCount.load();
    cycle(10000);
    std::uint64_t after = gAllocCount.load();
    EXPECT_EQ(after - before, 0u) << "steady-state cycle allocated";
    EXPECT_GT(sink, 0u);
}

} // namespace
} // namespace m3v::sim
