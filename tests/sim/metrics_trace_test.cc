/**
 * @file
 * Unit tests for the metrics registry and the Chrome-trace tracer:
 * handle stability and idempotent registration, sorted enumeration,
 * JSON rendering, span nesting/auto-close, and the category gate.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace m3v::sim {
namespace {

//
// A tiny JSON validity checker: enough structure awareness to assert
// that the dumps are parseable (balanced containers outside strings,
// no trailing garbage) without pulling in a JSON library.
//

bool
jsonBalanced(const std::string &s)
{
    std::vector<char> stack;
    bool in_str = false;
    bool escaped = false;
    for (char c : s) {
        if (in_str) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_str = false;
            continue;
        }
        switch (c) {
        case '"':
            in_str = true;
            break;
        case '{':
        case '[':
            stack.push_back(c);
            break;
        case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
        case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
        default:
            break;
        }
    }
    return !in_str && stack.empty();
}

TEST(MetricsRegistry, HandlesAreStableAndIdempotent)
{
    MetricsRegistry reg;
    Counter *a = reg.counter("tile0.vdtu.tlb.misses");
    Counter *b = reg.counter("tile0.vdtu.tlb.misses");
    EXPECT_EQ(a, b);
    a->inc(3);
    EXPECT_EQ(b->value(), 3u);
    EXPECT_EQ(reg.size(), 1u);

    // Creating more instruments must not move existing ones.
    for (int i = 0; i < 64; i++)
        reg.counter("noc.r" + std::to_string(i) + ".routed");
    EXPECT_EQ(reg.counter("tile0.vdtu.tlb.misses"), a);
    EXPECT_EQ(a->value(), 3u);
}

TEST(MetricsRegistry, PathsSorted)
{
    MetricsRegistry reg;
    reg.counter("zeta");
    reg.sampler("alpha");
    reg.counter("mid.dle");
    std::vector<std::string> p = reg.paths();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0], "alpha");
    EXPECT_EQ(p[1], "mid.dle");
    EXPECT_EQ(p[2], "zeta");
}

TEST(MetricsRegistry, KindMismatchPanics)
{
    MetricsRegistry reg;
    reg.counter("x.y");
    EXPECT_DEATH(reg.sampler("x.y"), "x.y");
    EXPECT_DEATH(reg.histogram("x.y", 0, 1, 2), "x.y");
    EXPECT_DEATH(reg.counter(""), "empty");
}

TEST(MetricsRegistry, FindCounter)
{
    MetricsRegistry reg;
    Counter *c = reg.counter("a.b");
    reg.sampler("a.s");
    EXPECT_EQ(reg.findCounter("a.b"), c);
    EXPECT_EQ(reg.findCounter("a.s"), nullptr);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
}

TEST(MetricsRegistry, HistogramRangeOnlyOnFirstRegistration)
{
    MetricsRegistry reg;
    Histogram *h = reg.histogram("lat", 0.0, 10.0, 10);
    h->add(5.0);
    Histogram *again = reg.histogram("lat", 100.0, 200.0, 3);
    EXPECT_EQ(h, again);
    EXPECT_EQ(again->total(), 1u);
}

TEST(MetricsRegistry, JsonIsParseableAndComplete)
{
    MetricsRegistry reg;
    reg.counter("dtu.msgs_sent")->inc(7);
    Sampler *s = reg.sampler("rpc.latency_us");
    s->add(1.0);
    s->add(3.0);
    Histogram *h = reg.histogram("hops", 0.0, 8.0, 8);
    h->add(2.0);
    std::string json = reg.toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"dtu.msgs_sent\""), std::string::npos);
    EXPECT_NE(json.find("7"), std::string::npos);
    EXPECT_NE(json.find("\"rpc.latency_us\""), std::string::npos);
    EXPECT_NE(json.find("\"mean\""), std::string::npos);
    EXPECT_NE(json.find("\"hops\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(JsonEscape, ControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    std::string ctl = jsonEscape(std::string(1, '\x01'));
    EXPECT_EQ(ctl, "\\u0001");
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    EXPECT_FALSE(t.anyEnabled());
    t.begin(TraceCat::Dtu, 0, kTraceTidDtu, "SEND");
    t.instant(TraceCat::Noc, kTracePidNoc, 2, "hop");
    t.end(TraceCat::Dtu, 0, kTraceTidDtu);
    EXPECT_EQ(t.events(), 0u);
    EXPECT_EQ(t.droppedEnds(), 0u);
}

TEST(Tracer, CategoryMaskGatesPerCategory)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    t.setMask(static_cast<std::uint32_t>(TraceCat::Noc));
    EXPECT_TRUE(t.enabled(TraceCat::Noc));
    EXPECT_FALSE(t.enabled(TraceCat::Dtu));
    t.instant(TraceCat::Noc, kTracePidNoc, 0, "hop");
    t.instant(TraceCat::Dtu, 0, kTraceTidDtu, "retransmit");
    EXPECT_EQ(t.events(), 1u);
}

TEST(Tracer, SpansNestPerTrack)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    t.enableAll();
    t.begin(TraceCat::TmCall, 1, 2, "outer");
    t.begin(TraceCat::TmCall, 1, 2, "inner");
    // A span on another track does not interfere.
    t.begin(TraceCat::Dtu, 1, kTraceTidDtu, "SEND");
    EXPECT_EQ(t.openSpans(1, 2), 2u);
    EXPECT_EQ(t.openSpans(1, kTraceTidDtu), 1u);
    t.end(TraceCat::TmCall, 1, 2);
    t.end(TraceCat::TmCall, 1, 2);
    t.end(TraceCat::Dtu, 1, kTraceTidDtu);
    EXPECT_EQ(t.openSpans(1, 2), 0u);
    EXPECT_EQ(t.droppedEnds(), 0u);
    // 3 begins + 3 ends.
    EXPECT_EQ(t.events(), 6u);
}

TEST(Tracer, UnmatchedEndIsDroppedAndCounted)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    t.enableAll();
    t.end(TraceCat::Sched, 3, 4);
    EXPECT_EQ(t.droppedEnds(), 1u);
    EXPECT_EQ(t.events(), 0u);
}

TEST(Tracer, ToJsonAutoClosesOpenSpans)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    t.enableAll();
    t.begin(TraceCat::TmCall, 0, 1, "tmcall:wait");
    t.begin(TraceCat::TmCall, 0, 1, "nested");
    std::string json = t.toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_EQ(t.openSpans(0, 1), 0u);

    // Balanced B/E counts in the rendered output.
    std::size_t b = 0, e = 0, pos = 0;
    while ((pos = json.find("\"ph\": \"B\"", pos)) !=
           std::string::npos) {
        b++;
        pos++;
    }
    pos = 0;
    while ((pos = json.find("\"ph\": \"E\"", pos)) !=
           std::string::npos) {
        e++;
        pos++;
    }
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(e, 2u);
}

TEST(Tracer, MetadataAndInstantInJson)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    t.enableAll();
    t.setProcessName(3, "tile3");
    t.setThreadName(3, 7, "worker");
    t.instant(TraceCat::Irq, 3, kTraceTidMux, "timer_irq");
    std::string json = t.toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"tile3\""), std::string::npos);
    EXPECT_NE(json.find("\"worker\""), std::string::npos);
    EXPECT_NE(json.find("timer_irq"), std::string::npos);
    // Instants carry thread scope.
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
}

TEST(Tracer, TimestampsUseEventQueueTime)
{
    EventQueue eq;
    Tracer &t = eq.tracer();
    t.enableAll();
    bool fired = false;
    eq.schedule(2'000'000, [&] { // 2 us
        t.instant(TraceCat::Sched, 0, 0, "late");
        fired = true;
    });
    eq.run();
    ASSERT_TRUE(fired);
    std::string json = t.toJson();
    // 2'000'000 ticks = 2.000000 us in the trace.
    EXPECT_NE(json.find("2.000000"), std::string::npos) << json;
}

} // namespace
} // namespace m3v::sim
