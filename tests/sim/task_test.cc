/**
 * @file
 * Unit tests for coroutine tasks: delays, nesting, waits, channels,
 * and pool lifetime management.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.h"

namespace m3v::sim {
namespace {

Task
delayTwice(EventQueue &eq, Tick d, std::vector<Tick> &log)
{
    co_await Delay{eq, d};
    log.push_back(eq.now());
    co_await Delay{eq, d};
    log.push_back(eq.now());
}

TEST(Task, DelayAdvancesSimTime)
{
    EventQueue eq;
    TaskPool pool(eq);
    std::vector<Tick> log;
    pool.spawn(delayTwice(eq, 100, log));
    eq.run();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0], 100u);
    EXPECT_EQ(log[1], 200u);
    EXPECT_EQ(pool.active(), 0u);
}

Task
inner(EventQueue &eq, std::vector<int> &log)
{
    log.push_back(1);
    co_await Delay{eq, 10};
    log.push_back(2);
}

Task
outer(EventQueue &eq, std::vector<int> &log)
{
    log.push_back(0);
    co_await inner(eq, log);
    log.push_back(3);
}

TEST(Task, NestedTasksRunInOrder)
{
    EventQueue eq;
    TaskPool pool(eq);
    std::vector<int> log;
    pool.spawn(outer(eq, log));
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(pool.active(), 0u);
}

Task
waiter(Wait &w, std::vector<int> &log)
{
    log.push_back(1);
    co_await w;
    log.push_back(2);
}

TEST(Task, WaitBlocksUntilSignal)
{
    EventQueue eq;
    TaskPool pool(eq);
    Wait w(eq);
    std::vector<int> log;
    pool.spawn(waiter(w, log));
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(pool.active(), 1u);
    w.signal();
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(pool.active(), 0u);
}

TEST(Task, WaitSignalBeforeAwaitCompletesImmediately)
{
    EventQueue eq;
    TaskPool pool(eq);
    Wait w(eq);
    w.signal();
    std::vector<int> log;
    pool.spawn(waiter(w, log));
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

Task
consume(Channel<int> &ch, int n, std::vector<int> &log)
{
    for (int i = 0; i < n; i++) {
        int v = co_await ch.receive();
        log.push_back(v);
    }
}

TEST(Task, ChannelDeliversInFifoOrder)
{
    EventQueue eq;
    TaskPool pool(eq);
    Channel<int> ch(eq);
    std::vector<int> log;
    pool.spawn(consume(ch, 3, log));
    eq.run();
    EXPECT_TRUE(log.empty());
    ch.push(10);
    ch.push(20);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{10, 20}));
    ch.push(30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{10, 20, 30}));
    EXPECT_EQ(pool.active(), 0u);
}

TEST(Task, ChannelTryReceive)
{
    EventQueue eq;
    Channel<int> ch(eq);
    int v = 0;
    EXPECT_FALSE(ch.tryReceive(v));
    ch.push(7);
    EXPECT_TRUE(ch.tryReceive(v));
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(ch.tryReceive(v));
}

Task
forever(Wait &w)
{
    co_await w;
}

TEST(Task, PoolDestroysUnfinishedTasks)
{
    EventQueue eq;
    Wait w(eq);
    {
        TaskPool pool(eq);
        pool.spawn(forever(w), "stuck");
        eq.run();
        EXPECT_EQ(pool.active(), 1u);
        // Pool destructor must free the suspended frame without UB
        // (verified by ASAN builds; here we just exercise the path).
    }
}

Task
spawnMany(EventQueue &eq, int &done)
{
    co_await Delay{eq, 1};
    done++;
}

TEST(Task, ManyConcurrentTasks)
{
    EventQueue eq;
    TaskPool pool(eq);
    int done = 0;
    for (int i = 0; i < 500; i++)
        pool.spawn(spawnMany(eq, done));
    eq.run();
    EXPECT_EQ(done, 500);
    EXPECT_EQ(pool.active(), 0u);
}

Task
deepNest(EventQueue &eq, int depth, int &leaf)
{
    if (depth == 0) {
        co_await Delay{eq, 1};
        leaf++;
        co_return;
    }
    co_await deepNest(eq, depth - 1, leaf);
}

TEST(Task, DeepNestingDoesNotOverflow)
{
    EventQueue eq;
    TaskPool pool(eq);
    int leaf = 0;
    pool.spawn(deepNest(eq, 200, leaf));
    eq.run();
    EXPECT_EQ(leaf, 1);
    EXPECT_EQ(pool.active(), 0u);
}

} // namespace
} // namespace m3v::sim
