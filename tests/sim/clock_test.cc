/**
 * @file
 * Unit tests for clock domains, including the platform frequencies the
 * paper uses (80 MHz BOOM, 100 MHz Rocket, 3 GHz x86 for gem5 runs).
 */

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace m3v::sim {
namespace {

TEST(Clock, RocketHundredMegahertz)
{
    Clock c(100'000'000);
    EXPECT_EQ(c.period(), 10'000u); // 10 ns in ps
    EXPECT_EQ(c.cyclesToTicks(1), 10'000u);
    EXPECT_EQ(c.cyclesToTicks(100), 1'000'000u);
    EXPECT_EQ(c.ticksToCycles(1'000'000), 100u);
}

TEST(Clock, BoomEightyMegahertz)
{
    Clock c(80'000'000);
    EXPECT_EQ(c.period(), 12'500u); // 12.5 ns
    EXPECT_EQ(c.cyclesToTicks(80'000'000), kTicksPerSec);
}

TEST(Clock, ThreeGigahertzNoDriftOverBillionsOfCycles)
{
    Clock c(3'000'000'000ULL);
    // 3e9 cycles must be exactly one second, despite the non-integral
    // 333.33 ps period.
    EXPECT_EQ(c.cyclesToTicks(3'000'000'000ULL), kTicksPerSec);
    EXPECT_EQ(c.cyclesToTicks(6'000'000'000ULL), 2 * kTicksPerSec);
}

TEST(Clock, RoundTripErrorBounded)
{
    Clock c(3'000'000'000ULL);
    for (Cycles cyc : {1ULL, 7ULL, 1000ULL, 999'999'937ULL}) {
        Tick t = c.cyclesToTicks(cyc);
        Cycles back = c.ticksToCycles(t);
        // Round trip may lose at most one cycle to truncation.
        EXPECT_LE(cyc - back, 1u);
    }
}

class ClockSweepTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ClockSweepTest, CyclesToTicksIsMonotoneAndLinear)
{
    Clock c(GetParam());
    Tick prev = 0;
    for (Cycles cyc = 1; cyc <= 4096; cyc *= 2) {
        Tick t = c.cyclesToTicks(cyc);
        EXPECT_GT(t, prev);
        // Doubling cycles doubles ticks within 1 tick of rounding.
        Tick twice = c.cyclesToTicks(cyc * 2);
        EXPECT_LE(twice - 2 * t, 1u);
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ClockSweepTest,
    ::testing::Values(80'000'000ULL, 100'000'000ULL, 1'000'000'000ULL,
                      3'000'000'000ULL, 2'700'000'000ULL));

} // namespace
} // namespace m3v::sim
