/**
 * @file
 * Unit tests for the deterministic fault-injection plan: window
 * matching, probability extremes, determinism across same-seed runs,
 * per-site decorrelation, and injection counters.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault.h"

namespace m3v::sim {
namespace {

TEST(FaultTest, DefaultSiteIsInert)
{
    FaultSite site;
    EXPECT_FALSE(site.active());
    EXPECT_FALSE(site.shouldDrop(0));
    EXPECT_FALSE(site.shouldCorrupt(123456));
    EXPECT_EQ(site.delayCycles(99), 0u);
}

TEST(FaultTest, EmptyPlanInjectsNothing)
{
    FaultPlan plan(1);
    FaultSite site = plan.makeSite("noc.tile0.inj");
    ASSERT_TRUE(site.active());
    for (Tick t = 0; t < 1000; t += 7) {
        EXPECT_FALSE(site.shouldDrop(t));
        EXPECT_FALSE(site.shouldCorrupt(t));
        EXPECT_EQ(site.delayCycles(t), 0u);
    }
    EXPECT_EQ(plan.drops().value(), 0u);
}

TEST(FaultTest, ProbabilityOneAlwaysFiresInsideWindow)
{
    FaultPlan plan(2);
    plan.addDrop("", 1.0, 100, 200);
    FaultSite site = plan.makeSite("x");
    EXPECT_FALSE(site.shouldDrop(99));
    EXPECT_TRUE(site.shouldDrop(100));
    EXPECT_TRUE(site.shouldDrop(199));
    EXPECT_FALSE(site.shouldDrop(200)); // [start, end)
    EXPECT_EQ(plan.drops().value(), 2u);
}

TEST(FaultTest, ProbabilityZeroNeverFires)
{
    FaultPlan plan(3);
    plan.addCorrupt("", 0.0);
    FaultSite site = plan.makeSite("x");
    for (Tick t = 0; t < 1000; t++)
        EXPECT_FALSE(site.shouldCorrupt(t));
    EXPECT_EQ(plan.corrupts().value(), 0u);
}

TEST(FaultTest, SitePrefixSelectsSites)
{
    FaultPlan plan(4);
    plan.addDrop("noc.r0", 1.0);
    FaultSite hit = plan.makeSite("noc.r0.port3");
    FaultSite miss = plan.makeSite("noc.r1.port0");
    FaultSite shorter = plan.makeSite("noc.r");
    EXPECT_TRUE(hit.shouldDrop(0));
    EXPECT_FALSE(miss.shouldDrop(0));
    EXPECT_FALSE(shorter.shouldDrop(0));
}

TEST(FaultTest, KindsAreIndependent)
{
    FaultPlan plan(5);
    plan.addDrop("a", 1.0);
    plan.addCorrupt("b", 1.0);
    FaultSite a = plan.makeSite("a");
    FaultSite b = plan.makeSite("b");
    EXPECT_TRUE(a.shouldDrop(0));
    EXPECT_FALSE(a.shouldCorrupt(0));
    EXPECT_FALSE(b.shouldDrop(0));
    EXPECT_TRUE(b.shouldCorrupt(0));
}

TEST(FaultTest, DelayCyclesAccumulateAcrossWindows)
{
    FaultPlan plan(6);
    plan.addDelay("x", 1.0, 10);
    plan.addDelay("x", 1.0, 32);
    FaultSite site = plan.makeSite("x");
    EXPECT_EQ(site.delayCycles(0), 42u);
    EXPECT_EQ(plan.delays().value(), 2u);
}

TEST(FaultTest, SameSeedSameDecisions)
{
    auto run = [](std::uint64_t seed) {
        FaultPlan plan(seed);
        plan.addDrop("", 0.5);
        FaultSite site = plan.makeSite("x");
        std::vector<bool> out;
        for (Tick t = 0; t < 256; t++)
            out.push_back(site.shouldDrop(t));
        return out;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

TEST(FaultTest, SitesDrawDecorrelatedStreams)
{
    // Two sites under one window must not mirror each other's
    // decisions (each gets its own split() of the root Rng).
    FaultPlan plan(7);
    plan.addDrop("", 0.5);
    FaultSite a = plan.makeSite("a");
    FaultSite b = plan.makeSite("b");
    unsigned differ = 0;
    for (Tick t = 0; t < 256; t++)
        if (a.shouldDrop(t) != b.shouldDrop(t))
            differ++;
    EXPECT_GT(differ, 50u);
}

TEST(FaultTest, CountersTrackInjections)
{
    FaultPlan plan(8);
    plan.addDrop("", 1.0);
    plan.addCorrupt("", 1.0);
    FaultSite site = plan.makeSite("x");
    for (Tick t = 0; t < 10; t++) {
        site.shouldDrop(t);
        site.shouldCorrupt(t);
    }
    EXPECT_EQ(plan.drops().value(), 10u);
    EXPECT_EQ(plan.corrupts().value(), 10u);
    EXPECT_EQ(plan.delays().value(), 0u);
}

} // namespace
} // namespace m3v::sim
