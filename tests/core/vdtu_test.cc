/**
 * @file
 * Unit tests for the vDTU: activity-tagged endpoint protection,
 * CUR_ACT exchange, the software-loaded TLB, PMP, core requests, and
 * the always-deliverable fast path for non-running activities.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/vdtu.h"
#include "dtu/memory_tile.h"
#include "sim/fault.h"
#include "sim/invariants.h"

namespace m3v::core {
namespace {

using dtu::ActId;
using dtu::Endpoint;
using dtu::EpId;
using dtu::Error;
using dtu::kInvalidEp;
using dtu::kPageSize;
using dtu::kPermR;
using dtu::kPermRW;
using dtu::kPermW;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

class VDtuTest : public ::testing::Test
{
  protected:
    static constexpr noc::TileId kTileA = 0;
    static constexpr noc::TileId kTileB = 1;
    static constexpr noc::TileId kMemTile = 2;

    VDtuTest()
        : noc(eq, noc::NocParams{}),
          vdtuA(eq, "vdtuA", noc, kTileA, 80'000'000),
          vdtuB(eq, "vdtuB", noc, kTileB, 80'000'000),
          mem(eq, "mem", noc, kMemTile)
    {
        noc.finalize();
        // PMP endpoint 0 on both tiles: 1 MiB of DRAM, RW.
        vdtuA.configEp(0, Endpoint::makeMem(dtu::kTileMuxAct, kMemTile,
                                            0, 1 << 20, kPermRW));
        vdtuB.configEp(0, Endpoint::makeMem(dtu::kTileMuxAct, kMemTile,
                                            0, 1 << 20, kPermRW));
    }

    /** Map a VA identity-style into PMP region 0 and return it. */
    dtu::VirtAddr
    mapped(VDtu &v, ActId act, dtu::VirtAddr va, std::uint8_t perms)
    {
        v.tlbInsert(act, va, va & 0xffff'f000, perms);
        return va;
    }

    sim::EventQueue eq;
    noc::Noc noc;
    VDtu vdtuA;
    VDtu vdtuB;
    dtu::MemoryTile mem;
};

TEST_F(VDtuTest, XchgActIsAtomicAndReportsUnread)
{
    EXPECT_EQ(vdtuA.curAct().act, dtu::kInvalidAct);
    CurAct old = vdtuA.xchgAct(7);
    EXPECT_EQ(old.act, dtu::kInvalidAct);
    EXPECT_EQ(vdtuA.curAct().act, 7);
    EXPECT_EQ(vdtuA.curAct().msgCount, 0);
}

TEST_F(VDtuTest, ForeignEndpointLooksUnknown)
{
    vdtuB.configEp(8, Endpoint::makeRecv(2, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(3); // some other activity is running

    Error err = Error::None;
    dtu::VirtAddr buf = mapped(vdtuA, 3, 0x10000, kPermRW);
    // Activity 3 tries to use activity 1's send endpoint.
    vdtuA.cmdSend(3, 8, buf, bytes("x"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::ForeignEp);
    EXPECT_EQ(vdtuA.foreignEpDenials(), 1u);
}

TEST_F(VDtuTest, OwnerCanUseItsEndpoints)
{
    vdtuB.configEp(8, Endpoint::makeRecv(2, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(2);

    Error err = Error::Aborted;
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    vdtuA.cmdSend(1, 8, buf, bytes("hi"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    EXPECT_EQ(vdtuB.unread(2, 8), 1u);
}

TEST_F(VDtuTest, TlbMissFailsCommandWithoutInterrupt)
{
    vdtuB.configEp(8, Endpoint::makeRecv(2, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);

    Error err = Error::None;
    vdtuA.cmdSend(1, 8, 0xdead0000, bytes("x"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::TlbMiss);
    EXPECT_EQ(vdtuA.tlbMisses(), 1u);

    // After a software TLB insert, the retry succeeds.
    vdtuA.tlbInsert(1, 0xdead0000, 0x4000, kPermRW);
    err = Error::Aborted;
    vdtuA.cmdSend(1, 8, 0xdead0000, bytes("x"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);
    EXPECT_GE(vdtuA.tlbHits(), 1u);
}

TEST_F(VDtuTest, TlbIsPerActivity)
{
    vdtuA.tlbInsert(1, 0x8000, 0x8000, kPermRW);
    vdtuB.configEp(8, Endpoint::makeRecv(2, 256, 4));
    vdtuA.configEp(9, Endpoint::makeSend(2, kTileB, 8, 0, 4));
    vdtuA.xchgAct(2);
    Error err = Error::None;
    // Activity 2 uses the same VA but has no translation of its own.
    vdtuA.cmdSend(2, 9, 0x8000, bytes("x"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::TlbMiss);
}

TEST(VDtuTlb, EvictsLruWhenFull)
{
    sim::EventQueue eq;
    noc::Noc noc(eq, noc::NocParams{});
    VDtuParams p;
    p.tlbEntries = 4;
    VDtu small(eq, "small", noc, 0, 80'000'000, p);
    for (int i = 0; i < 4; i++)
        small.tlbInsert(1, 0x1000u * static_cast<unsigned>(i + 1),
                        0x1000, kPermR);
    EXPECT_EQ(small.tlbFill(), 4u);
    small.tlbInsert(1, 0x9000, 0x1000, kPermR);
    EXPECT_EQ(small.tlbFill(), 4u);
}

TEST_F(VDtuTest, TlbFlushActRemovesOnlyThatActivity)
{
    vdtuA.tlbInsert(1, 0x1000, 0x1000, kPermR);
    vdtuA.tlbInsert(2, 0x2000, 0x2000, kPermR);
    vdtuA.tlbFlushAct(1);
    EXPECT_EQ(vdtuA.tlbFill(), 1u);
}

TEST_F(VDtuTest, PmpRejectsOutOfRegionAccess)
{
    vdtuB.configEp(8, Endpoint::makeRecv(2, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    // Translation points beyond the 1 MiB PMP region of EP 0.
    vdtuA.tlbInsert(1, 0x5000, 0x200000, kPermRW);
    Error err = Error::None;
    vdtuA.cmdSend(1, 8, 0x5000, bytes("x"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::PmpFault);
}

TEST_F(VDtuTest, PmpSelectsEndpointByUpperBits)
{
    // PMP EP 1 (selector 0b01) covers a second region with R only.
    vdtuA.configEp(1, Endpoint::makeMem(dtu::kTileMuxAct, kMemTile,
                                        1 << 20, 1 << 20, kPermR));
    vdtuB.configEp(8, Endpoint::makeRecv(2, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);

    // Reading a send buffer from the R-only region is fine.
    dtu::PhysAddr phys1 = (1ULL << 62) | 0x3000;
    vdtuA.tlbInsert(1, 0x7000, phys1, kPermRW);
    Error err = Error::Aborted;
    vdtuA.cmdSend(1, 8, 0x7000, bytes("x"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::None);

    // But a memory-EP read that lands (writes) into it is not.
    vdtuA.configEp(9, Endpoint::makeMem(1, kMemTile, 0, 4096, kPermR));
    err = Error::None;
    vdtuA.cmdRead(1, 9, 0, 64, 0x7000,
                  [&](Error e, std::vector<std::uint8_t>) { err = e; });
    eq.run();
    EXPECT_EQ(err, Error::PmpFault);
}

TEST_F(VDtuTest, MessageForNonRunningActivityRaisesCoreRequest)
{
    // Receive EP owned by activity 5, but activity 1 is current.
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);

    int irqs = 0;
    vdtuB.setCoreReqIrq([&]() { irqs++; });

    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    Error err = Error::Aborted;
    vdtuA.cmdSend(1, 8, buf, bytes("wake up"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.run();

    // Fast path: the message IS stored even though act 5 is not
    // running (the key difference from M3x).
    EXPECT_EQ(err, Error::None);
    EXPECT_EQ(vdtuB.unread(5, 8), 1u);
    EXPECT_EQ(irqs, 1);
    ASSERT_TRUE(vdtuB.coreReqPending());
    EXPECT_EQ(vdtuB.coreReqGet().act, 5);
    vdtuB.coreReqAck();
    EXPECT_FALSE(vdtuB.coreReqPending());
}

TEST_F(VDtuTest, MessageForRunningActivityUpdatesCurActCount)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(5);

    int irqs = 0;
    vdtuB.setCoreReqIrq([&]() { irqs++; });
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    vdtuA.cmdSend(1, 8, buf, bytes("m"), kInvalidEp, [](Error) {});
    eq.run();
    EXPECT_EQ(irqs, 0); // recipient is running: no interrupt
    EXPECT_EQ(vdtuB.curAct().msgCount, 1);
    // Fetch decrements the counter.
    int slot = vdtuB.fetch(5, 8);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(vdtuB.curAct().msgCount, 0);
}

TEST_F(VDtuTest, AckReraisesIrqWhenQueueNonEmpty)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 8));
    vdtuB.configEp(9, Endpoint::makeRecv(6, 256, 8));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 8));
    vdtuA.configEp(9, Endpoint::makeSend(1, kTileB, 9, 0, 8));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);

    int irqs = 0;
    vdtuB.setCoreReqIrq([&]() { irqs++; });
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    vdtuA.cmdSend(1, 8, buf, bytes("a"), kInvalidEp, [](Error) {});
    vdtuA.cmdSend(1, 9, buf, bytes("b"), kInvalidEp, [](Error) {});
    eq.run();
    EXPECT_EQ(irqs, 1); // only the first arrival interrupts
    vdtuB.coreReqAck();
    EXPECT_EQ(irqs, 2); // ack re-raises for the queued request
    vdtuB.coreReqAck();
    EXPECT_EQ(irqs, 2);
}

TEST_F(VDtuTest, SameActBurstCoalescesCoreRequests)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 16));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 16));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);

    int irqs = 0;
    vdtuB.setCoreReqIrq([&]() { irqs++; });
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    int delivered = 0;
    for (int i = 0; i < 6; i++) {
        vdtuA.cmdSend(1, 8, buf, bytes("m"), kInvalidEp,
                      [&](Error e) {
                          if (e == Error::None)
                              delivered++;
                      });
    }
    eq.run();
    // All six messages target the same sleeping activity: they
    // coalesce into one core request — one IRQ, one queue slot, no
    // backpressure even though the queue depth is only 4.
    EXPECT_EQ(delivered, 6);
    EXPECT_EQ(vdtuB.unread(5, 8), 6u);
    EXPECT_EQ(irqs, 1);
    EXPECT_EQ(vdtuB.coreReqs(), 1u);
    EXPECT_EQ(vdtuB.coreReqsCoalesced(), 5u);
    CoreReq req = vdtuB.coreReqGet();
    EXPECT_EQ(req.act, 5);
    EXPECT_EQ(req.count, 6u);
    vdtuB.coreReqAck();
    EXPECT_FALSE(vdtuB.coreReqPending());
}

TEST_F(VDtuTest, FullCoreRequestQueueBackpressuresNoc)
{
    // Six distinct sleeping activities: every message needs its own
    // core-request slot (same-act coalescing cannot absorb any).
    for (EpId i = 0; i < 6; i++) {
        vdtuB.configEp(8 + i, Endpoint::makeRecv(
                                  static_cast<ActId>(5 + i), 256, 16));
        vdtuA.configEp(8 + i,
                       Endpoint::makeSend(1, kTileB, 8 + i, 0, 16));
    }
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);

    int delivered = 0;
    for (EpId i = 0; i < 6; i++) {
        vdtuA.cmdSend(1, 8 + i, buf, bytes("m"), kInvalidEp,
                      [&](Error e) {
                          if (e == Error::None)
                              delivered++;
                      });
    }
    eq.run();
    // Default queue depth is 4: two sends stay backpressured in the
    // NoC until core requests are acknowledged.
    EXPECT_EQ(delivered, 4);
    while (vdtuB.coreReqPending())
        vdtuB.coreReqAck();
    eq.run();
    EXPECT_EQ(delivered, 6);
}

TEST_F(VDtuTest, ResetActClearsUnreadCoreReqsAndTlb)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    vdtuB.tlbInsert(5, 0x3000, 0x3000, kPermRW);

    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    vdtuA.cmdSend(1, 8, buf, bytes("zombie"), kInvalidEp,
                  [](Error) {});
    eq.run();
    EXPECT_EQ(vdtuB.unread(5, 8), 1u);
    EXPECT_TRUE(vdtuB.coreReqPending());
    EXPECT_EQ(vdtuB.tlbFill(), 1u);

    // Activity 5 dies: all of its vDTU state must go with it.
    vdtuB.resetAct(5);
    EXPECT_EQ(vdtuB.unread(5, 8), 0u);
    EXPECT_FALSE(vdtuB.coreReqPending());
    EXPECT_EQ(vdtuB.tlbFill(), 0u);
    // A reused activity id starts with a clean slate.
    EXPECT_EQ(vdtuB.fetch(5, 8), -1);
}

TEST_F(VDtuTest, ResetActReleasesCoreReqBackpressure)
{
    // Distinct activities so the queue actually fills (see above).
    for (EpId i = 0; i < 6; i++) {
        vdtuB.configEp(8 + i, Endpoint::makeRecv(
                                  static_cast<ActId>(5 + i), 256, 16));
        vdtuA.configEp(8 + i,
                       Endpoint::makeSend(1, kTileB, 8 + i, 0, 16));
    }
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);

    int delivered = 0;
    for (EpId i = 0; i < 6; i++) {
        vdtuA.cmdSend(1, 8 + i, buf, bytes("m"), kInvalidEp,
                      [&](Error e) {
                          if (e == Error::None)
                              delivered++;
                      });
    }
    eq.run();
    // Core-request queue (depth 4) is full; two sends are parked in
    // the NoC.
    EXPECT_EQ(delivered, 4);

    // Killing the recipients must free the queue slots and wake the
    // parked senders (previously they would hang forever).
    for (ActId a = 5; a < 9; a++)
        vdtuB.resetAct(a);
    eq.run();
    EXPECT_EQ(delivered, 6);
}

TEST_F(VDtuTest, ResetActOfCurrentClearsMsgCount)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(5);

    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    vdtuA.cmdSend(1, 8, buf, bytes("m"), kInvalidEp, [](Error) {});
    eq.run();
    EXPECT_EQ(vdtuB.curAct().msgCount, 1);

    vdtuB.resetAct(5);
    EXPECT_EQ(vdtuB.curAct().msgCount, 0);
    EXPECT_EQ(vdtuB.unread(5, 8), 0u);
}

TEST_F(VDtuTest, ResetActLeavesOtherActivitiesAlone)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuB.configEp(9, Endpoint::makeRecv(6, 256, 4));
    vdtuA.configEp(8, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.configEp(9, Endpoint::makeSend(1, kTileB, 9, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    vdtuB.tlbInsert(6, 0x6000, 0x6000, kPermR);

    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);
    vdtuA.cmdSend(1, 8, buf, bytes("a"), kInvalidEp, [](Error) {});
    vdtuA.cmdSend(1, 9, buf, bytes("b"), kInvalidEp, [](Error) {});
    eq.run();
    EXPECT_EQ(vdtuB.unread(5, 8), 1u);
    EXPECT_EQ(vdtuB.unread(6, 9), 1u);

    vdtuB.resetAct(5);
    EXPECT_EQ(vdtuB.unread(5, 8), 0u);
    EXPECT_EQ(vdtuB.unread(6, 9), 1u);
    EXPECT_EQ(vdtuB.tlbFill(), 1u);
    // Activity 6's core request survives.
    ASSERT_TRUE(vdtuB.coreReqPending());
    EXPECT_EQ(vdtuB.coreReqGet().act, 6);
}

//
// resetAct edge cases: reset racing the wire protocol, reset with a
// full receive ring, and double reset.
//

TEST(VDtuReset, SurvivesResetDuringRetransmission)
{
    sim::EventQueue eq;
    sim::FaultPlan plan(1234);
    // Drop every packet for the first 0.1 ms: the initial transfer is
    // lost and the sender's retransmission is still pending when the
    // receiving activity is reset. The retry after the window lands
    // on the already-reset activity.
    plan.addDrop("noc.", 1.0, 0, sim::kTicksPerMs / 10);
    noc::NocParams np;
    np.faults = &plan;
    noc::Noc noc(eq, np);
    VDtu vdtuA(eq, "vdtuA", noc, 0, 80'000'000);
    VDtu vdtuB(eq, "vdtuB", noc, 1, 80'000'000);
    dtu::MemoryTile mem(eq, "mem", noc, 2);
    noc.finalize();
    vdtuA.configEp(0, Endpoint::makeMem(dtu::kTileMuxAct, 2, 0,
                                        1 << 20, kPermRW));
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(9, Endpoint::makeSend(1, 1, 8, 0x5, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    vdtuA.tlbInsert(1, 0x10000, 0x10000, kPermRW);

    sim::Invariants inv;
    vdtuA.registerInvariants(inv);
    vdtuB.registerInvariants(inv);
    inv.attach(eq);

    Error err = Error::Aborted;
    vdtuA.cmdSend(1, 9, 0x10000, bytes("late"), kInvalidEp,
                  [&](Error e) { err = e; });
    eq.schedule(sim::kTicksPerMs / 20, [&]() { vdtuB.resetAct(5); });
    eq.run();

    EXPECT_TRUE(inv.ok()) << inv.report();
    // The retry after the fault window delivers the message to the
    // (reset) activity id; the bookkeeping must be consistent either
    // way: sender credits mirror the remote ring occupancy exactly.
    EXPECT_EQ(err, Error::None);
    const Endpoint &sep = vdtuA.ep(9);
    EXPECT_EQ(sep.send.credits + vdtuB.unread(5, 8),
              sep.send.maxCredits);
}

TEST_F(VDtuTest, ResetWithFullRecvRingReturnsAllCredits)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(9, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);

    // Fill the ring completely without fetching: all credits are held
    // by occupied slots on the receiver.
    int ok = 0;
    for (int i = 0; i < 4; i++)
        vdtuA.cmdSend(1, 9, buf, bytes("m"), kInvalidEp, [&](Error e) {
            ok += e == Error::None ? 1 : 0;
        });
    eq.run();
    ASSERT_EQ(ok, 4);
    EXPECT_EQ(vdtuB.unread(5, 8), 4u);
    EXPECT_EQ(vdtuA.ep(9).send.credits, 0u);

    // The reset must free every slot and return every credit.
    vdtuB.resetAct(5);
    eq.run();
    EXPECT_EQ(vdtuB.unread(5, 8), 0u);
    EXPECT_EQ(vdtuA.ep(9).send.credits, 4u);

    // The ring is usable again at full depth.
    ok = 0;
    for (int i = 0; i < 4; i++)
        vdtuA.cmdSend(1, 9, buf, bytes("m"), kInvalidEp, [&](Error e) {
            ok += e == Error::None ? 1 : 0;
        });
    eq.run();
    EXPECT_EQ(ok, 4);
    EXPECT_EQ(vdtuB.unread(5, 8), 4u);
}

TEST_F(VDtuTest, DoubleResetDoesNotManufactureCredits)
{
    vdtuB.configEp(8, Endpoint::makeRecv(5, 256, 4));
    vdtuA.configEp(9, Endpoint::makeSend(1, kTileB, 8, 0, 4));
    vdtuA.xchgAct(1);
    vdtuB.xchgAct(1);
    dtu::VirtAddr buf = mapped(vdtuA, 1, 0x10000, kPermRW);

    for (int i = 0; i < 2; i++)
        vdtuA.cmdSend(1, 9, buf, bytes("m"), kInvalidEp, [](Error) {});
    eq.run();
    EXPECT_EQ(vdtuA.ep(9).send.credits, 2u);

    vdtuB.resetAct(5);
    eq.run();
    EXPECT_EQ(vdtuA.ep(9).send.credits, 4u);

    // A second reset of the same (already clean) activity must be a
    // no-op: no second round of credit returns, no phantom state.
    vdtuB.resetAct(5);
    eq.run();
    EXPECT_EQ(vdtuA.ep(9).send.credits, 4u);
    EXPECT_EQ(vdtuB.unread(5, 8), 0u);
    EXPECT_FALSE(vdtuB.coreReqPending());

    // Exactly four sends fit before flow control pushes back.
    int errs_none = 0, errs_nocredits = 0;
    for (int i = 0; i < 5; i++)
        vdtuA.cmdSend(1, 9, buf, bytes("m"), kInvalidEp, [&](Error e) {
            errs_none += e == Error::None ? 1 : 0;
            errs_nocredits += e == Error::NoCredits ? 1 : 0;
        });
    eq.run();
    EXPECT_EQ(errs_none, 4);
    EXPECT_EQ(errs_nocredits, 1);
}

} // namespace
} // namespace m3v::core
