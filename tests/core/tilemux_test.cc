/**
 * @file
 * Integration tests for TileMux + vDTU on a simulated core: tile-local
 * RPC between two activities (the "M3v local" path of Figure 6),
 * scheduling, time slices, TLB-miss retries, polling on dedicated
 * tiles, and exits.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/tilemux.h"
#include "core/vdtu.h"
#include "dtu/memory_tile.h"

namespace m3v::core {
namespace {

using dtu::ActId;
using dtu::Endpoint;
using dtu::EpId;
using dtu::Error;
using dtu::kInvalidEp;
using dtu::kPermRW;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/**
 * Minimal message-send helper with TLB-miss retry: the precursor of
 * the full libm3 SendGate in src/os.
 */
sim::Task
sendMsg(Activity &act, VDtu &vdtu, EpId ep, dtu::VirtAddr buf,
        std::vector<std::uint8_t> payload, EpId reply_ep, Error *out)
{
    auto &t = act.thread();
    for (;;) {
        co_await t.compute(40); // MMIO command setup
        Error err = Error::Aborted;
        bool done = false;
        vdtu.cmdSend(act.id(), ep, buf, payload, reply_ep,
                     [&](Error e) {
                         err = e;
                         done = true;
                         t.wake();
                     });
        while (!done)
            co_await t.externalWait();
        if (err == Error::TlbMiss) {
            co_await act.mux().translCall(act, buf, false);
            continue;
        }
        if (out)
            *out = err;
        co_return;
    }
}

/** Wait for and fetch one message; returns the payload via out. */
sim::Task
recvMsg(Activity &act, VDtu &vdtu, EpId rep, int *slot_out)
{
    auto &t = act.thread();
    for (;;) {
        co_await act.mux().waitForMsg(act);
        co_await t.compute(14); // MMIO fetch
        int slot = vdtu.fetch(act.id(), rep);
        if (slot >= 0) {
            *slot_out = slot;
            co_return;
        }
        // Spurious wake-up (e.g. another EP of ours): wait again.
    }
}

/** A two-tile platform rig (tile 0, tile 1, one memory tile). */
struct Rig
{
    static constexpr noc::TileId kTile0 = 0;
    static constexpr noc::TileId kTile1 = 1;
    static constexpr noc::TileId kMemTile = 2;

    Rig()
        : noc(eq, noc::NocParams{}),
          core0(eq, "core0", tile::CoreModel::boom(), kTile0),
          core1(eq, "core1", tile::CoreModel::boom(), kTile1),
          vdtu0(eq, "vdtu0", noc, kTile0, 80'000'000),
          vdtu1(eq, "vdtu1", noc, kTile1, 80'000'000),
          mem(eq, "mem", noc, kMemTile),
          mux0(eq, "mux0", core0, vdtu0),
          mux1(eq, "mux1", core1, vdtu1)
    {
        noc.finalize();
        for (auto *v : {&vdtu0, &vdtu1}) {
            v->configEp(0, Endpoint::makeMem(dtu::kTileMuxAct,
                                             kMemTile, 0, 1 << 20,
                                             kPermRW));
        }
    }

    /** Create an activity with a mapped scratch page at 0x10000. */
    Activity *
    makeAct(TileMux &mux, ActId id, const std::string &name)
    {
        Activity *a = mux.createActivity(id, name);
        mux.mapPage(id, 0x10000, 0x1000u * id, kPermRW);
        return a;
    }

    sim::EventQueue eq;
    noc::Noc noc;
    tile::Core core0;
    tile::Core core1;
    VDtu vdtu0;
    VDtu vdtu1;
    dtu::MemoryTile mem;
    TileMux mux0;
    TileMux mux1;
};

class TileMuxTest : public ::testing::Test, public Rig
{
};

sim::Task
pingBody(Activity &act, VDtu &vdtu, EpId sep, EpId rep, int rounds,
         int *completed)
{
    for (int i = 0; i < rounds; i++) {
        Error err = Error::Aborted;
        co_await sendMsg(act, vdtu, sep, 0x10000, bytes("ping"),
                         rep, &err);
        EXPECT_EQ(err, Error::None);
        int slot = -1;
        co_await recvMsg(act, vdtu, rep, &slot);
        EXPECT_EQ(std::string(
                      vdtu.slotMsg(rep, slot).payload.begin(),
                      vdtu.slotMsg(rep, slot).payload.end()),
                  "pong");
        co_await act.thread().compute(14); // MMIO ack
        vdtu.ack(act.id(), rep, slot);
        (*completed)++;
    }
    co_await act.mux().exitCall(act);
}

sim::Task
pongBody(Activity &act, VDtu &vdtu, EpId rep)
{
    for (;;) {
        int slot = -1;
        co_await recvMsg(act, vdtu, rep, &slot);
        Error err = Error::Aborted;
        bool done = false;
        co_await act.thread().compute(40);
        vdtu.cmdReply(act.id(), rep, slot, 0x10000, bytes("pong"),
                      [&](Error e) {
                          err = e;
                          done = true;
                          act.thread().wake();
                      });
        while (!done)
            co_await act.thread().externalWait();
        if (err == Error::TlbMiss) {
            // Refill and retry once (reply buffers are page-local).
            co_await act.mux().translCall(act, 0x10000, false);
            // The one-shot reply permission was not consumed on a
            // failed command; retry.
            done = false;
            co_await act.thread().compute(40);
            vdtu.cmdReply(act.id(), rep, slot, 0x10000,
                          bytes("pong"), [&](Error e) {
                              err = e;
                              done = true;
                              act.thread().wake();
                          });
            while (!done)
                co_await act.thread().externalWait();
        }
        EXPECT_EQ(err, Error::None);
    }
}

TEST_F(TileMuxTest, TileLocalRpcBetweenTwoActivities)
{
    // Client (act 1) and server (act 2) share tile 0: every message
    // goes to a non-running activity -> core request + switch.
    Activity *client = makeAct(mux0, 1, "client");
    Activity *server = makeAct(mux0, 2, "server");

    vdtu0.configEp(8, Endpoint::makeRecv(2, 256, 8));  // server req
    vdtu0.configEp(9, Endpoint::makeSend(1, kTile0, 8, 0x77, 8));
    vdtu0.configEp(10, Endpoint::makeRecv(1, 256, 8)); // client reply

    int completed = 0;
    mux0.startActivity(server, pongBody(*server, vdtu0, 8));
    mux0.startActivity(client,
                       pingBody(*client, vdtu0, 9, 10, 5, &completed));
    eq.run();

    EXPECT_EQ(completed, 5);
    EXPECT_EQ(client->state(), Activity::State::Dead);
    // Each round needs two core-request interrupts (one per message
    // to a non-running activity) and context switches.
    EXPECT_GE(mux0.coreReqIrqs(), 10u);
    EXPECT_GE(mux0.ctxSwitches(), 10u);
}

TEST_F(TileMuxTest, CrossTileRpcUsesPollingNotKernel)
{
    // Client alone on tile 0, server alone on tile 1: both poll; no
    // TileMux involvement after startup (the fast path of Figure 6).
    Activity *client = makeAct(mux0, 1, "client");
    Activity *server = makeAct(mux1, 2, "server");

    vdtu1.configEp(8, Endpoint::makeRecv(2, 256, 8));
    vdtu0.configEp(9, Endpoint::makeSend(1, kTile1, 8, 0x77, 8));
    vdtu0.configEp(10, Endpoint::makeRecv(1, 256, 8));

    int completed = 0;
    mux1.startActivity(server, pongBody(*server, vdtu1, 8));
    mux0.startActivity(client,
                       pingBody(*client, vdtu0, 9, 10, 5, &completed));
    eq.run();

    EXPECT_EQ(completed, 5);
    // No message-triggered interrupts: recipients were always current.
    EXPECT_EQ(mux0.coreReqIrqs(), 0u);
    EXPECT_EQ(mux1.coreReqIrqs(), 0u);
}

TEST_F(TileMuxTest, LocalRpcIsSlowerThanRemote)
{
    // The headline microbenchmark shape: tile-local RPC costs context
    // switches; cross-tile RPC does not (Figure 6).
    Activity *client_l = makeAct(mux0, 1, "client-l");
    Activity *server_l = makeAct(mux0, 2, "server-l");
    vdtu0.configEp(8, Endpoint::makeRecv(2, 256, 8));
    vdtu0.configEp(9, Endpoint::makeSend(1, kTile0, 8, 0, 8));
    vdtu0.configEp(10, Endpoint::makeRecv(1, 256, 8));

    int done_l = 0;
    mux0.startActivity(server_l, pongBody(*server_l, vdtu0, 8));
    mux0.startActivity(client_l,
                       pingBody(*client_l, vdtu0, 9, 10, 20, &done_l));
    eq.run();
    sim::Tick local_time = eq.now();
    ASSERT_EQ(done_l, 20);

    // Fresh rig for the remote pair.
    Rig remote;
    Activity *client_r = remote.makeAct(remote.mux0, 1, "client-r");
    Activity *server_r = remote.makeAct(remote.mux1, 2, "server-r");
    remote.vdtu1.configEp(8, Endpoint::makeRecv(2, 256, 8));
    remote.vdtu0.configEp(9, Endpoint::makeSend(1, kTile1, 8, 0, 8));
    remote.vdtu0.configEp(10, Endpoint::makeRecv(1, 256, 8));
    int done_r = 0;
    remote.mux1.startActivity(server_r,
                              pongBody(*server_r, remote.vdtu1, 8));
    remote.mux0.startActivity(
        client_r,
        pingBody(*client_r, remote.vdtu0, 9, 10, 20, &done_r));
    remote.eq.run();
    ASSERT_EQ(done_r, 20);
    EXPECT_GT(local_time, remote.eq.now());
}

sim::Task
spinBody(Activity &act, sim::Cycles chunk, int iters, int *progress)
{
    for (int i = 0; i < iters; i++) {
        co_await act.thread().compute(chunk);
        (*progress)++;
    }
    co_await act.mux().exitCall(act);
}

TEST_F(TileMuxTest, TimeSliceRoundRobinInterleaves)
{
    Activity *a = makeAct(mux0, 1, "spin-a");
    Activity *b = makeAct(mux0, 2, "spin-b");
    int pa = 0, pb = 0;
    // Each chunk is 20k cycles = 0.25 ms; slice is 1 ms.
    mux0.startActivity(a, spinBody(*a, 20'000, 40, &pa));
    mux0.startActivity(b, spinBody(*b, 20'000, 40, &pb));

    // After 6 ms, both have made progress (interleaved execution).
    eq.runUntil(6 * sim::kTicksPerMs);
    EXPECT_GT(pa, 4);
    EXPECT_GT(pb, 4);
    EXPECT_LT(pa, 40);
    EXPECT_LT(pb, 40);
    eq.run();
    EXPECT_EQ(pa, 40);
    EXPECT_EQ(pb, 40);
    EXPECT_GE(mux0.timerIrqs(), 5u);
}

/** Forever: wait for a message on rep, fetch it, ack it. */
sim::Task
sinkBody(Activity &act, VDtu &vdtu, EpId rep, int *received)
{
    for (;;) {
        int slot = -1;
        co_await recvMsg(act, vdtu, rep, &slot);
        co_await act.thread().compute(14); // MMIO ack
        vdtu.ack(act.id(), rep, slot);
        (*received)++;
    }
}

/** Send @p count one-way messages, one every @p gap cycles. */
sim::Task
tickerBody(Activity &act, VDtu &vdtu, EpId sep, int count)
{
    for (int i = 0; i < count; i++) {
        co_await act.thread().compute(8'000); // 0.1 ms at 80 MHz
        Error err = Error::Aborted;
        co_await sendMsg(act, vdtu, sep, 0x10000, bytes("tick"),
                         kInvalidEp, &err);
        EXPECT_EQ(err, Error::None);
    }
    co_await act.mux().exitCall(act);
}

TEST_F(TileMuxTest, CoreRequestIrqDoesNotResetTimeSlice)
{
    // Regression: a core-request interrupt used to re-dispatch the
    // preempted activity with a *fresh* time slice. Under steady
    // message traffic with a period shorter than the slice (here
    // 0.1 ms vs 1 ms), the slice timer was re-armed on every message
    // and never fired, so a compute-bound activity starved every
    // other runnable activity on its tile. The remnant of the slice
    // must be banked across the interrupt instead.
    Activity *hog = makeAct(mux0, 1, "hog");
    Activity *peer = makeAct(mux0, 2, "peer");
    Activity *sink = makeAct(mux0, 3, "sink");
    Activity *ticker = makeAct(mux1, 4, "ticker");

    vdtu0.configEp(8, Endpoint::makeRecv(3, 256, 8)); // sink's ring
    vdtu1.configEp(9, Endpoint::makeSend(4, kTile0, 8, 0x42, 8));

    int hog_progress = 0, peer_progress = 0, received = 0;
    mux0.startActivity(hog, spinBody(*hog, 20'000, 400,
                                     &hog_progress));
    mux0.startActivity(peer, spinBody(*peer, 20'000, 40,
                                      &peer_progress));
    mux0.startActivity(sink, sinkBody(*sink, vdtu0, 8, &received));
    mux1.startActivity(ticker, tickerBody(*ticker, vdtu1, 9, 60));

    eq.runUntil(8 * sim::kTicksPerMs);

    // The traffic must actually have exercised the interrupt path.
    EXPECT_GT(received, 20);
    EXPECT_GE(mux0.coreReqIrqs(), 20u);
    // The law under test: slices still expire under traffic, and the
    // peer gets its share of the core.
    EXPECT_GE(mux0.timerIrqs(), 2u);
    EXPECT_GT(peer_progress, 0);
}

sim::Task
yieldingBody(Activity &act, std::vector<int> *order, int tag)
{
    for (int i = 0; i < 3; i++) {
        co_await act.thread().compute(1000);
        order->push_back(tag);
        co_await act.mux().yieldCall(act);
    }
    co_await act.mux().exitCall(act);
}

TEST_F(TileMuxTest, YieldAlternates)
{
    Activity *a = makeAct(mux0, 1, "y-a");
    Activity *b = makeAct(mux0, 2, "y-b");
    std::vector<int> order;
    mux0.startActivity(a, yieldingBody(*a, &order, 1));
    mux0.startActivity(b, yieldingBody(*b, &order, 2));
    eq.run();
    ASSERT_EQ(order.size(), 6u);
    // Strict alternation 1,2,1,2,1,2.
    for (std::size_t i = 0; i < order.size(); i++)
        EXPECT_EQ(order[i], i % 2 == 0 ? 1 : 2);
}

TEST_F(TileMuxTest, RestartAfterYieldIsIgnored)
{
    Activity *a = makeAct(mux0, 1, "restarted");
    Activity *b = makeAct(mux0, 2, "peer");
    std::vector<int> order;
    mux0.startActivity(a, yieldingBody(*a, &order, 1));
    mux0.startActivity(b, yieldingBody(*b, &order, 2));

    // Let activity 1 reach its first yield (it sits queued on ready_),
    // then try to start it again: the duplicate must be ignored, or
    // the body would be enqueued twice and run interleaved with
    // itself.
    eq.runUntil(sim::kTicksPerMs);
    EXPECT_NE(a->state(), Activity::State::Init);
    mux0.startActivity(a, yieldingBody(*a, &order, 99));
    eq.run();

    ASSERT_EQ(order.size(), 6u);
    for (std::size_t i = 0; i < order.size(); i++) {
        EXPECT_NE(order[i], 99);
        EXPECT_EQ(order[i], i % 2 == 0 ? 1 : 2);
    }
    EXPECT_EQ(a->state(), Activity::State::Dead);
    EXPECT_EQ(b->state(), Activity::State::Dead);
}

TEST_F(TileMuxTest, RestartDeadActivityIsIgnored)
{
    Activity *a = makeAct(mux0, 1, "once");
    int progress = 0;
    mux0.startActivity(a, spinBody(*a, 1000, 2, &progress));
    eq.run();
    EXPECT_EQ(progress, 2);
    EXPECT_EQ(a->state(), Activity::State::Dead);

    // A second start on the dead record must not resurrect it.
    mux0.startActivity(a, spinBody(*a, 1000, 2, &progress));
    eq.run();
    EXPECT_EQ(progress, 2);
    EXPECT_EQ(a->state(), Activity::State::Dead);
}

TEST_F(TileMuxTest, ExitRunsHookAndFreesCore)
{
    Activity *a = makeAct(mux0, 1, "exiter");
    bool hook = false;
    a->onExit = [&]() { hook = true; };
    int progress = 0;
    mux0.startActivity(a, spinBody(*a, 1000, 2, &progress));
    eq.run();
    EXPECT_TRUE(hook);
    EXPECT_EQ(progress, 2);
    EXPECT_EQ(a->state(), Activity::State::Dead);
    EXPECT_EQ(core0.current(), nullptr);
}

TEST_F(TileMuxTest, TranslTmcallRefillsTlbViaPageTable)
{
    Activity *client = makeAct(mux0, 1, "client");
    Activity *server = makeAct(mux1, 2, "server");
    vdtu1.configEp(8, Endpoint::makeRecv(2, 256, 8));
    vdtu0.configEp(9, Endpoint::makeSend(1, kTile1, 8, 0, 8));
    vdtu0.configEp(10, Endpoint::makeRecv(1, 256, 8));

    int completed = 0;
    mux1.startActivity(server, pongBody(*server, vdtu1, 8));
    mux0.startActivity(client,
                       pingBody(*client, vdtu0, 9, 10, 3, &completed));
    eq.run();
    EXPECT_EQ(completed, 3);
    // First send misses the TLB; the transl TMCall fills it from the
    // page table installed by mapPage.
    EXPECT_GE(vdtu0.tlbMisses(), 1u);
    EXPECT_GE(vdtu0.tlbHits(), 2u);
    EXPECT_GE(mux0.tmCalls(), 1u);
}

TEST_F(TileMuxTest, PageFaultHandlerResolvesUnmappedPage)
{
    Activity *client = makeAct(mux0, 1, "client");
    Activity *server = makeAct(mux1, 2, "server");
    vdtu1.configEp(8, Endpoint::makeRecv(2, 256, 8));
    vdtu0.configEp(9, Endpoint::makeSend(1, kTile1, 8, 0, 8));
    vdtu0.configEp(10, Endpoint::makeRecv(1, 256, 8));

    int faults = 0;
    mux0.setPageFaultHandler([&](Activity &, dtu::VirtAddr va,
                                 dtu::PhysAddr &pa,
                                 std::uint8_t &perms,
                                 sim::Cycles &extra) {
        faults++;
        pa = va & 0xffff'f000; // pager decision
        perms = kPermRW;
        extra = 500; // pager RPC cost
        return true;
    });

    // Unmap the scratch page so the transl TMCall page-faults.
    client->addrSpace().unmap(0x10000);

    int completed = 0;
    mux1.startActivity(server, pongBody(*server, vdtu1, 8));
    mux0.startActivity(client,
                       pingBody(*client, vdtu0, 9, 10, 2, &completed));
    eq.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(faults, 1);
}

//
// Watchdog and crash injection.
//

/** A one-tile rig with a configurable TileMux. */
struct WatchdogRig
{
    explicit WatchdogRig(TileMuxParams params)
        : noc(eq, noc::NocParams{}),
          core(eq, "core", tile::CoreModel::boom(), 0),
          vdtu(eq, "vdtu", noc, 0, 80'000'000),
          mux(eq, "mux", core, vdtu, params)
    {
        noc.finalize();
    }

    sim::EventQueue eq;
    noc::Noc noc;
    tile::Core core;
    VDtu vdtu;
    TileMux mux;
};

sim::Task
hogBody(Activity &act, bool *finished)
{
    co_await act.thread().compute(2'000'000'000);
    *finished = true;
    co_await act.mux().exitCall(act);
}

sim::Task
politeBody(Activity &act, int rounds, bool *finished)
{
    for (int i = 0; i < rounds; i++) {
        co_await act.thread().compute(10'000);
        co_await act.mux().yieldCall(act);
    }
    *finished = true;
    co_await act.mux().exitCall(act);
}

TEST(TileMuxWatchdog, KillsLoneHogAndUpcalls)
{
    // A hog on an otherwise-idle tile must still be caught: the
    // watchdog keeps the slice timer armed even when nobody else is
    // ready.
    TileMuxParams params;
    params.watchdogSlices = 2;
    WatchdogRig rig(params);
    Activity *hog = rig.mux.createActivity(7, "hog");
    std::vector<ActId> crashed;
    rig.mux.setCrashHandler([&](ActId id) { crashed.push_back(id); });
    bool finished = false;
    rig.mux.startActivity(hog, hogBody(*hog, &finished));
    rig.eq.run();
    EXPECT_FALSE(finished);
    EXPECT_EQ(hog->state(), Activity::State::Dead);
    EXPECT_EQ(rig.mux.watchdogKills(), 1u);
    ASSERT_EQ(crashed.size(), 1u);
    EXPECT_EQ(crashed[0], 7u);
}

TEST(TileMuxWatchdog, TmCallsResetTheCounter)
{
    // An activity that keeps making TMCalls outlives any number of
    // time slices.
    TileMuxParams params;
    params.watchdogSlices = 2;
    WatchdogRig rig(params);
    Activity *act = rig.mux.createActivity(3, "polite");
    bool finished = false;
    rig.mux.startActivity(act, politeBody(*act, 50, &finished));
    rig.eq.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(rig.mux.watchdogKills(), 0u);
}

TEST(TileMuxWatchdog, DisabledByDefault)
{
    WatchdogRig rig(TileMuxParams{});
    Activity *hog = rig.mux.createActivity(7, "hog");
    bool finished = false;
    rig.mux.startActivity(hog, hogBody(*hog, &finished));
    rig.eq.run();
    EXPECT_TRUE(finished);
    EXPECT_EQ(rig.mux.watchdogKills(), 0u);
}

TEST(TileMuxWatchdog, CrashInjectionStopsARunningActivity)
{
    WatchdogRig rig(TileMuxParams{});
    Activity *victim = rig.mux.createActivity(5, "victim");
    std::vector<ActId> crashed;
    rig.mux.setCrashHandler([&](ActId id) { crashed.push_back(id); });
    bool finished = false;
    rig.mux.startActivity(victim, hogBody(*victim, &finished));
    rig.eq.schedule(sim::kTicksPerMs, [&]() {
        rig.mux.crashActivity(victim->id());
    });
    rig.eq.run();
    EXPECT_FALSE(finished);
    EXPECT_EQ(victim->state(), Activity::State::Dead);
    EXPECT_EQ(rig.mux.crashes(), 1u);
    ASSERT_EQ(crashed.size(), 1u);
    EXPECT_EQ(crashed[0], 5u);
    // A second crash of the same activity is a no-op.
    rig.mux.crashActivity(victim->id());
    EXPECT_EQ(rig.mux.crashes(), 1u);
}

} // namespace
} // namespace m3v::core
