# CMake generated Testfile for 
# Source directory: /root/repo/tests/noc
# Build directory: /root/repo/build/tests/noc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/noc/noc_test[1]_include.cmake")
