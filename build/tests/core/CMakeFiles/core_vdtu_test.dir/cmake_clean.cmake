file(REMOVE_RECURSE
  "CMakeFiles/core_vdtu_test.dir/vdtu_test.cc.o"
  "CMakeFiles/core_vdtu_test.dir/vdtu_test.cc.o.d"
  "core_vdtu_test"
  "core_vdtu_test.pdb"
  "core_vdtu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vdtu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
