# Empty dependencies file for core_vdtu_test.
# This may be replaced when dependencies are built.
