# Empty compiler generated dependencies file for core_tilemux_test.
# This may be replaced when dependencies are built.
