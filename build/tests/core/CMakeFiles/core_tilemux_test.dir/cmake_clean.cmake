file(REMOVE_RECURSE
  "CMakeFiles/core_tilemux_test.dir/tilemux_test.cc.o"
  "CMakeFiles/core_tilemux_test.dir/tilemux_test.cc.o.d"
  "core_tilemux_test"
  "core_tilemux_test.pdb"
  "core_tilemux_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tilemux_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
