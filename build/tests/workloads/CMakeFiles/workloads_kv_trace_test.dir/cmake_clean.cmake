file(REMOVE_RECURSE
  "CMakeFiles/workloads_kv_trace_test.dir/kv_trace_test.cc.o"
  "CMakeFiles/workloads_kv_trace_test.dir/kv_trace_test.cc.o.d"
  "workloads_kv_trace_test"
  "workloads_kv_trace_test.pdb"
  "workloads_kv_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_kv_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
