# Empty dependencies file for workloads_kv_trace_test.
# This may be replaced when dependencies are built.
