file(REMOVE_RECURSE
  "CMakeFiles/workloads_codec_test.dir/codec_test.cc.o"
  "CMakeFiles/workloads_codec_test.dir/codec_test.cc.o.d"
  "workloads_codec_test"
  "workloads_codec_test.pdb"
  "workloads_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
