# Empty compiler generated dependencies file for workloads_codec_test.
# This may be replaced when dependencies are built.
