file(REMOVE_RECURSE
  "CMakeFiles/workloads_kv_property_test.dir/kv_property_test.cc.o"
  "CMakeFiles/workloads_kv_property_test.dir/kv_property_test.cc.o.d"
  "workloads_kv_property_test"
  "workloads_kv_property_test.pdb"
  "workloads_kv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_kv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
