# Empty compiler generated dependencies file for workloads_kv_property_test.
# This may be replaced when dependencies are built.
