# Empty compiler generated dependencies file for m3x_test.
# This may be replaced when dependencies are built.
