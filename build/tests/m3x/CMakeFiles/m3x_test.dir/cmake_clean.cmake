file(REMOVE_RECURSE
  "CMakeFiles/m3x_test.dir/m3x_test.cc.o"
  "CMakeFiles/m3x_test.dir/m3x_test.cc.o.d"
  "m3x_test"
  "m3x_test.pdb"
  "m3x_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3x_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
