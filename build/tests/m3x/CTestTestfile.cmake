# CMake generated Testfile for 
# Source directory: /root/repo/tests/m3x
# Build directory: /root/repo/build/tests/m3x
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/m3x/m3x_test[1]_include.cmake")
