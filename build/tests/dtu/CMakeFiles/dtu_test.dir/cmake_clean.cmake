file(REMOVE_RECURSE
  "CMakeFiles/dtu_test.dir/dtu_test.cc.o"
  "CMakeFiles/dtu_test.dir/dtu_test.cc.o.d"
  "dtu_test"
  "dtu_test.pdb"
  "dtu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
