# Empty compiler generated dependencies file for dtu_test.
# This may be replaced when dependencies are built.
