# Empty compiler generated dependencies file for services_fs_image_test.
# This may be replaced when dependencies are built.
