file(REMOVE_RECURSE
  "CMakeFiles/services_fs_image_test.dir/fs_image_test.cc.o"
  "CMakeFiles/services_fs_image_test.dir/fs_image_test.cc.o.d"
  "services_fs_image_test"
  "services_fs_image_test.pdb"
  "services_fs_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_fs_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
