# CMake generated Testfile for 
# Source directory: /root/repo/tests/services
# Build directory: /root/repo/build/tests/services
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/services/services_fs_image_test[1]_include.cmake")
include("/root/repo/build/tests/services/services_test[1]_include.cmake")
