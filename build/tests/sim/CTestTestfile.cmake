# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/sim_event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/sim/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/sim/sim_clock_test[1]_include.cmake")
include("/root/repo/build/tests/sim/sim_rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim/sim_stats_test[1]_include.cmake")
