file(REMOVE_RECURSE
  "CMakeFiles/linuxref_test.dir/linux_test.cc.o"
  "CMakeFiles/linuxref_test.dir/linux_test.cc.o.d"
  "linuxref_test"
  "linuxref_test.pdb"
  "linuxref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linuxref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
