# Empty dependencies file for linuxref_test.
# This may be replaced when dependencies are built.
