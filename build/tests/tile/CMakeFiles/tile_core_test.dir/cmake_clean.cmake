file(REMOVE_RECURSE
  "CMakeFiles/tile_core_test.dir/core_test.cc.o"
  "CMakeFiles/tile_core_test.dir/core_test.cc.o.d"
  "tile_core_test"
  "tile_core_test.pdb"
  "tile_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
