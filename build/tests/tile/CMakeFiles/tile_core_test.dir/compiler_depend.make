# Empty compiler generated dependencies file for tile_core_test.
# This may be replaced when dependencies are built.
