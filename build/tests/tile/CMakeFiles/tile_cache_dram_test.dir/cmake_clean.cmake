file(REMOVE_RECURSE
  "CMakeFiles/tile_cache_dram_test.dir/cache_dram_test.cc.o"
  "CMakeFiles/tile_cache_dram_test.dir/cache_dram_test.cc.o.d"
  "tile_cache_dram_test"
  "tile_cache_dram_test.pdb"
  "tile_cache_dram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_cache_dram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
