# Empty dependencies file for tile_cache_dram_test.
# This may be replaced when dependencies are built.
