# CMake generated Testfile for 
# Source directory: /root/repo/tests/tile
# Build directory: /root/repo/build/tests/tile
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tile/tile_core_test[1]_include.cmake")
include("/root/repo/build/tests/tile/tile_cache_dram_test[1]_include.cmake")
