# CMake generated Testfile for 
# Source directory: /root/repo/tests/os
# Build directory: /root/repo/build/tests/os
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/os/os_caps_test[1]_include.cmake")
include("/root/repo/build/tests/os/os_system_test[1]_include.cmake")
include("/root/repo/build/tests/os/os_accel_test[1]_include.cmake")
include("/root/repo/build/tests/os/os_controller_errors_test[1]_include.cmake")
