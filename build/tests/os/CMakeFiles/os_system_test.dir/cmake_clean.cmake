file(REMOVE_RECURSE
  "CMakeFiles/os_system_test.dir/system_test.cc.o"
  "CMakeFiles/os_system_test.dir/system_test.cc.o.d"
  "os_system_test"
  "os_system_test.pdb"
  "os_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
