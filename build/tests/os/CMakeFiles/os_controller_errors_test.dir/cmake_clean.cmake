file(REMOVE_RECURSE
  "CMakeFiles/os_controller_errors_test.dir/controller_errors_test.cc.o"
  "CMakeFiles/os_controller_errors_test.dir/controller_errors_test.cc.o.d"
  "os_controller_errors_test"
  "os_controller_errors_test.pdb"
  "os_controller_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_controller_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
