# Empty compiler generated dependencies file for os_controller_errors_test.
# This may be replaced when dependencies are built.
