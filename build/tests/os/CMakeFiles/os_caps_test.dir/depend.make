# Empty dependencies file for os_caps_test.
# This may be replaced when dependencies are built.
