file(REMOVE_RECURSE
  "CMakeFiles/os_caps_test.dir/caps_test.cc.o"
  "CMakeFiles/os_caps_test.dir/caps_test.cc.o.d"
  "os_caps_test"
  "os_caps_test.pdb"
  "os_caps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_caps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
