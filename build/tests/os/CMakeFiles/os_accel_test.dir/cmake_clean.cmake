file(REMOVE_RECURSE
  "CMakeFiles/os_accel_test.dir/accel_test.cc.o"
  "CMakeFiles/os_accel_test.dir/accel_test.cc.o.d"
  "os_accel_test"
  "os_accel_test.pdb"
  "os_accel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_accel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
