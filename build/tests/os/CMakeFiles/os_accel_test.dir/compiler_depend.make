# Empty compiler generated dependencies file for os_accel_test.
# This may be replaced when dependencies are built.
