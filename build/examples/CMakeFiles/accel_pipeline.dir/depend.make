# Empty dependencies file for accel_pipeline.
# This may be replaced when dependencies are built.
