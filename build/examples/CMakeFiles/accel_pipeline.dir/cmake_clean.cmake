file(REMOVE_RECURSE
  "CMakeFiles/accel_pipeline.dir/accel_pipeline.cpp.o"
  "CMakeFiles/accel_pipeline.dir/accel_pipeline.cpp.o.d"
  "accel_pipeline"
  "accel_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
