file(REMOVE_RECURSE
  "CMakeFiles/find_trace.dir/find_trace.cpp.o"
  "CMakeFiles/find_trace.dir/find_trace.cpp.o.d"
  "find_trace"
  "find_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
