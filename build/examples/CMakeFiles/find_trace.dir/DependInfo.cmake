
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/find_trace.cpp" "examples/CMakeFiles/find_trace.dir/find_trace.cpp.o" "gcc" "examples/CMakeFiles/find_trace.dir/find_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/m3v_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxref/CMakeFiles/m3v_linuxref.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/m3v_services.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/m3v_os.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m3v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtu/CMakeFiles/m3v_dtu.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/m3v_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/m3v_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m3v_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
