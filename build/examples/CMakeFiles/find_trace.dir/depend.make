# Empty dependencies file for find_trace.
# This may be replaced when dependencies are built.
