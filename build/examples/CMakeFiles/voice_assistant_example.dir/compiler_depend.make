# Empty compiler generated dependencies file for voice_assistant_example.
# This may be replaced when dependencies are built.
