file(REMOVE_RECURSE
  "CMakeFiles/voice_assistant_example.dir/voice_assistant.cpp.o"
  "CMakeFiles/voice_assistant_example.dir/voice_assistant.cpp.o.d"
  "voice_assistant"
  "voice_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_assistant_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
