file(REMOVE_RECURSE
  "libm3v_m3x.a"
)
