file(REMOVE_RECURSE
  "CMakeFiles/m3v_m3x.dir/system.cc.o"
  "CMakeFiles/m3v_m3x.dir/system.cc.o.d"
  "libm3v_m3x.a"
  "libm3v_m3x.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_m3x.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
