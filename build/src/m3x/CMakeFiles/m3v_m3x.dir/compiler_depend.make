# Empty compiler generated dependencies file for m3v_m3x.
# This may be replaced when dependencies are built.
