file(REMOVE_RECURSE
  "libm3v_area.a"
)
