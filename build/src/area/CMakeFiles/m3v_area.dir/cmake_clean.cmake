file(REMOVE_RECURSE
  "CMakeFiles/m3v_area.dir/area.cc.o"
  "CMakeFiles/m3v_area.dir/area.cc.o.d"
  "libm3v_area.a"
  "libm3v_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
