# Empty dependencies file for m3v_area.
# This may be replaced when dependencies are built.
