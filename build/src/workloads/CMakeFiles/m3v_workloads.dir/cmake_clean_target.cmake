file(REMOVE_RECURSE
  "libm3v_workloads.a"
)
