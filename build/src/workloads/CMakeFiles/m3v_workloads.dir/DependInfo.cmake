
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bitio.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/bitio.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/bitio.cc.o.d"
  "/root/repo/src/workloads/flac.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/flac.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/flac.cc.o.d"
  "/root/repo/src/workloads/kv.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/kv.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/kv.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/trace.cc.o.d"
  "/root/repo/src/workloads/vfs_linux.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/vfs_linux.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/vfs_linux.cc.o.d"
  "/root/repo/src/workloads/vfs_m3v.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/vfs_m3v.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/vfs_m3v.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/ycsb.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/ycsb.cc.o.d"
  "/root/repo/src/workloads/zipf.cc" "src/workloads/CMakeFiles/m3v_workloads.dir/zipf.cc.o" "gcc" "src/workloads/CMakeFiles/m3v_workloads.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/m3v_services.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxref/CMakeFiles/m3v_linuxref.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/m3v_os.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m3v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtu/CMakeFiles/m3v_dtu.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/m3v_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/m3v_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m3v_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
