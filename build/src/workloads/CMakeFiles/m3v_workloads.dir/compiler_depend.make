# Empty compiler generated dependencies file for m3v_workloads.
# This may be replaced when dependencies are built.
