file(REMOVE_RECURSE
  "CMakeFiles/m3v_workloads.dir/bitio.cc.o"
  "CMakeFiles/m3v_workloads.dir/bitio.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/flac.cc.o"
  "CMakeFiles/m3v_workloads.dir/flac.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/kv.cc.o"
  "CMakeFiles/m3v_workloads.dir/kv.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/trace.cc.o"
  "CMakeFiles/m3v_workloads.dir/trace.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/vfs_linux.cc.o"
  "CMakeFiles/m3v_workloads.dir/vfs_linux.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/vfs_m3v.cc.o"
  "CMakeFiles/m3v_workloads.dir/vfs_m3v.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/ycsb.cc.o"
  "CMakeFiles/m3v_workloads.dir/ycsb.cc.o.d"
  "CMakeFiles/m3v_workloads.dir/zipf.cc.o"
  "CMakeFiles/m3v_workloads.dir/zipf.cc.o.d"
  "libm3v_workloads.a"
  "libm3v_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
