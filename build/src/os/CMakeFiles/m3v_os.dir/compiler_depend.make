# Empty compiler generated dependencies file for m3v_os.
# This may be replaced when dependencies are built.
