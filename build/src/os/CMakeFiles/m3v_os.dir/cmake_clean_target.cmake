file(REMOVE_RECURSE
  "libm3v_os.a"
)
