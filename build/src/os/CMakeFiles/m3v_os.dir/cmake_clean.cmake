file(REMOVE_RECURSE
  "CMakeFiles/m3v_os.dir/accel.cc.o"
  "CMakeFiles/m3v_os.dir/accel.cc.o.d"
  "CMakeFiles/m3v_os.dir/caps.cc.o"
  "CMakeFiles/m3v_os.dir/caps.cc.o.d"
  "CMakeFiles/m3v_os.dir/controller.cc.o"
  "CMakeFiles/m3v_os.dir/controller.cc.o.d"
  "CMakeFiles/m3v_os.dir/env.cc.o"
  "CMakeFiles/m3v_os.dir/env.cc.o.d"
  "CMakeFiles/m3v_os.dir/system.cc.o"
  "CMakeFiles/m3v_os.dir/system.cc.o.d"
  "libm3v_os.a"
  "libm3v_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
