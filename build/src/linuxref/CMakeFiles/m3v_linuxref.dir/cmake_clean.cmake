file(REMOVE_RECURSE
  "CMakeFiles/m3v_linuxref.dir/kernel.cc.o"
  "CMakeFiles/m3v_linuxref.dir/kernel.cc.o.d"
  "CMakeFiles/m3v_linuxref.dir/tmpfs.cc.o"
  "CMakeFiles/m3v_linuxref.dir/tmpfs.cc.o.d"
  "libm3v_linuxref.a"
  "libm3v_linuxref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_linuxref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
