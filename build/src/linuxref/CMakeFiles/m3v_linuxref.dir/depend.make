# Empty dependencies file for m3v_linuxref.
# This may be replaced when dependencies are built.
