file(REMOVE_RECURSE
  "libm3v_linuxref.a"
)
