# CMake generated Testfile for 
# Source directory: /root/repo/src/linuxref
# Build directory: /root/repo/build/src/linuxref
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
