file(REMOVE_RECURSE
  "libm3v_noc.a"
)
