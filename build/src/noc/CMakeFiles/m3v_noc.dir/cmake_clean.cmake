file(REMOVE_RECURSE
  "CMakeFiles/m3v_noc.dir/noc.cc.o"
  "CMakeFiles/m3v_noc.dir/noc.cc.o.d"
  "CMakeFiles/m3v_noc.dir/router.cc.o"
  "CMakeFiles/m3v_noc.dir/router.cc.o.d"
  "libm3v_noc.a"
  "libm3v_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
