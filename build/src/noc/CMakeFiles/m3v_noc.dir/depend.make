# Empty dependencies file for m3v_noc.
# This may be replaced when dependencies are built.
