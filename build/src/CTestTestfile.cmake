# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("noc")
subdirs("tile")
subdirs("dtu")
subdirs("core")
subdirs("os")
subdirs("m3x")
subdirs("linuxref")
subdirs("services")
subdirs("workloads")
subdirs("area")
