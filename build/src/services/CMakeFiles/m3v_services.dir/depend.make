# Empty dependencies file for m3v_services.
# This may be replaced when dependencies are built.
