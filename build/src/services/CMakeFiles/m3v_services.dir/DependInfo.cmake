
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/file_client.cc" "src/services/CMakeFiles/m3v_services.dir/file_client.cc.o" "gcc" "src/services/CMakeFiles/m3v_services.dir/file_client.cc.o.d"
  "/root/repo/src/services/fs_image.cc" "src/services/CMakeFiles/m3v_services.dir/fs_image.cc.o" "gcc" "src/services/CMakeFiles/m3v_services.dir/fs_image.cc.o.d"
  "/root/repo/src/services/m3fs.cc" "src/services/CMakeFiles/m3v_services.dir/m3fs.cc.o" "gcc" "src/services/CMakeFiles/m3v_services.dir/m3fs.cc.o.d"
  "/root/repo/src/services/net.cc" "src/services/CMakeFiles/m3v_services.dir/net.cc.o" "gcc" "src/services/CMakeFiles/m3v_services.dir/net.cc.o.d"
  "/root/repo/src/services/nic.cc" "src/services/CMakeFiles/m3v_services.dir/nic.cc.o" "gcc" "src/services/CMakeFiles/m3v_services.dir/nic.cc.o.d"
  "/root/repo/src/services/pager.cc" "src/services/CMakeFiles/m3v_services.dir/pager.cc.o" "gcc" "src/services/CMakeFiles/m3v_services.dir/pager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/m3v_os.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m3v_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dtu/CMakeFiles/m3v_dtu.dir/DependInfo.cmake"
  "/root/repo/build/src/tile/CMakeFiles/m3v_tile.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/m3v_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/m3v_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
