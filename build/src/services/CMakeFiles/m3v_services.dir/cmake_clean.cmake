file(REMOVE_RECURSE
  "CMakeFiles/m3v_services.dir/file_client.cc.o"
  "CMakeFiles/m3v_services.dir/file_client.cc.o.d"
  "CMakeFiles/m3v_services.dir/fs_image.cc.o"
  "CMakeFiles/m3v_services.dir/fs_image.cc.o.d"
  "CMakeFiles/m3v_services.dir/m3fs.cc.o"
  "CMakeFiles/m3v_services.dir/m3fs.cc.o.d"
  "CMakeFiles/m3v_services.dir/net.cc.o"
  "CMakeFiles/m3v_services.dir/net.cc.o.d"
  "CMakeFiles/m3v_services.dir/nic.cc.o"
  "CMakeFiles/m3v_services.dir/nic.cc.o.d"
  "CMakeFiles/m3v_services.dir/pager.cc.o"
  "CMakeFiles/m3v_services.dir/pager.cc.o.d"
  "libm3v_services.a"
  "libm3v_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
