file(REMOVE_RECURSE
  "libm3v_services.a"
)
