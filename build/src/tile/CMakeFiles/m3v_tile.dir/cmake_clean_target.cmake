file(REMOVE_RECURSE
  "libm3v_tile.a"
)
