
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tile/cache_model.cc" "src/tile/CMakeFiles/m3v_tile.dir/cache_model.cc.o" "gcc" "src/tile/CMakeFiles/m3v_tile.dir/cache_model.cc.o.d"
  "/root/repo/src/tile/core.cc" "src/tile/CMakeFiles/m3v_tile.dir/core.cc.o" "gcc" "src/tile/CMakeFiles/m3v_tile.dir/core.cc.o.d"
  "/root/repo/src/tile/core_model.cc" "src/tile/CMakeFiles/m3v_tile.dir/core_model.cc.o" "gcc" "src/tile/CMakeFiles/m3v_tile.dir/core_model.cc.o.d"
  "/root/repo/src/tile/dram.cc" "src/tile/CMakeFiles/m3v_tile.dir/dram.cc.o" "gcc" "src/tile/CMakeFiles/m3v_tile.dir/dram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/m3v_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/m3v_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
