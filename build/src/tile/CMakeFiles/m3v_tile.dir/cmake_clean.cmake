file(REMOVE_RECURSE
  "CMakeFiles/m3v_tile.dir/cache_model.cc.o"
  "CMakeFiles/m3v_tile.dir/cache_model.cc.o.d"
  "CMakeFiles/m3v_tile.dir/core.cc.o"
  "CMakeFiles/m3v_tile.dir/core.cc.o.d"
  "CMakeFiles/m3v_tile.dir/core_model.cc.o"
  "CMakeFiles/m3v_tile.dir/core_model.cc.o.d"
  "CMakeFiles/m3v_tile.dir/dram.cc.o"
  "CMakeFiles/m3v_tile.dir/dram.cc.o.d"
  "libm3v_tile.a"
  "libm3v_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
