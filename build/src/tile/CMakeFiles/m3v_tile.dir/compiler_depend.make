# Empty compiler generated dependencies file for m3v_tile.
# This may be replaced when dependencies are built.
