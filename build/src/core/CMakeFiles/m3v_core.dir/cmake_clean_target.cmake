file(REMOVE_RECURSE
  "libm3v_core.a"
)
