file(REMOVE_RECURSE
  "CMakeFiles/m3v_core.dir/addrspace.cc.o"
  "CMakeFiles/m3v_core.dir/addrspace.cc.o.d"
  "CMakeFiles/m3v_core.dir/tilemux.cc.o"
  "CMakeFiles/m3v_core.dir/tilemux.cc.o.d"
  "CMakeFiles/m3v_core.dir/vdtu.cc.o"
  "CMakeFiles/m3v_core.dir/vdtu.cc.o.d"
  "libm3v_core.a"
  "libm3v_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
