# Empty compiler generated dependencies file for m3v_core.
# This may be replaced when dependencies are built.
