file(REMOVE_RECURSE
  "CMakeFiles/m3v_dtu.dir/dtu.cc.o"
  "CMakeFiles/m3v_dtu.dir/dtu.cc.o.d"
  "CMakeFiles/m3v_dtu.dir/memory_tile.cc.o"
  "CMakeFiles/m3v_dtu.dir/memory_tile.cc.o.d"
  "libm3v_dtu.a"
  "libm3v_dtu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_dtu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
