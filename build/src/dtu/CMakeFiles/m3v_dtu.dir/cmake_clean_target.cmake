file(REMOVE_RECURSE
  "libm3v_dtu.a"
)
