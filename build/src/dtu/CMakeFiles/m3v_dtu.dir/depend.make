# Empty dependencies file for m3v_dtu.
# This may be replaced when dependencies are built.
