# Empty compiler generated dependencies file for m3v_sim.
# This may be replaced when dependencies are built.
