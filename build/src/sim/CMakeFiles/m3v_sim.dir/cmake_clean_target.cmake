file(REMOVE_RECURSE
  "libm3v_sim.a"
)
