file(REMOVE_RECURSE
  "CMakeFiles/m3v_sim.dir/clock.cc.o"
  "CMakeFiles/m3v_sim.dir/clock.cc.o.d"
  "CMakeFiles/m3v_sim.dir/event_queue.cc.o"
  "CMakeFiles/m3v_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/m3v_sim.dir/log.cc.o"
  "CMakeFiles/m3v_sim.dir/log.cc.o.d"
  "CMakeFiles/m3v_sim.dir/rng.cc.o"
  "CMakeFiles/m3v_sim.dir/rng.cc.o.d"
  "CMakeFiles/m3v_sim.dir/stats.cc.o"
  "CMakeFiles/m3v_sim.dir/stats.cc.o.d"
  "CMakeFiles/m3v_sim.dir/task.cc.o"
  "CMakeFiles/m3v_sim.dir/task.cc.o.d"
  "libm3v_sim.a"
  "libm3v_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3v_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
