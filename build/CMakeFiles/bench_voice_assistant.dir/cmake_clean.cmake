file(REMOVE_RECURSE
  "CMakeFiles/bench_voice_assistant.dir/bench/voice_assistant.cc.o"
  "CMakeFiles/bench_voice_assistant.dir/bench/voice_assistant.cc.o.d"
  "bench/voice_assistant"
  "bench/voice_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voice_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
