# Empty compiler generated dependencies file for bench_voice_assistant.
# This may be replaced when dependencies are built.
