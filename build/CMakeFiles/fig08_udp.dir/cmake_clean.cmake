file(REMOVE_RECURSE
  "CMakeFiles/fig08_udp.dir/bench/fig08_udp.cc.o"
  "CMakeFiles/fig08_udp.dir/bench/fig08_udp.cc.o.d"
  "bench/fig08_udp"
  "bench/fig08_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
