# Empty dependencies file for fig08_udp.
# This may be replaced when dependencies are built.
