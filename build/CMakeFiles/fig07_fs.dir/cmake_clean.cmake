file(REMOVE_RECURSE
  "CMakeFiles/fig07_fs.dir/bench/fig07_fs.cc.o"
  "CMakeFiles/fig07_fs.dir/bench/fig07_fs.cc.o.d"
  "bench/fig07_fs"
  "bench/fig07_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
