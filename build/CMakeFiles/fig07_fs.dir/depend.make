# Empty dependencies file for fig07_fs.
# This may be replaced when dependencies are built.
