file(REMOVE_RECURSE
  "CMakeFiles/fig09_scale.dir/bench/fig09_scale.cc.o"
  "CMakeFiles/fig09_scale.dir/bench/fig09_scale.cc.o.d"
  "bench/fig09_scale"
  "bench/fig09_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
