# Empty dependencies file for fig09_scale.
# This may be replaced when dependencies are built.
