file(REMOVE_RECURSE
  "CMakeFiles/fig10_cloud.dir/bench/fig10_cloud.cc.o"
  "CMakeFiles/fig10_cloud.dir/bench/fig10_cloud.cc.o.d"
  "bench/fig10_cloud"
  "bench/fig10_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
