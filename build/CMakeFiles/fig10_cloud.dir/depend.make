# Empty dependencies file for fig10_cloud.
# This may be replaced when dependencies are built.
